#include "fem/assembly.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <numeric>

#include "fem/skyline.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/guard.h"
#include "util/parallel.h"
#include "util/trace.h"

namespace feio::fem {

StaticProblem::StaticProblem(const mesh::TriMesh& mesh, Analysis analysis,
                             double thickness)
    : mesh_(&mesh), analysis_(analysis), thickness_(thickness) {
  FEIO_REQUIRE(mesh.num_nodes() > 0, "empty mesh");
  FEIO_REQUIRE(thickness > 0.0, "thickness must be positive");
  element_material_.resize(static_cast<size_t>(mesh.num_elements()));
}

void StaticProblem::set_material(const Material& m) { default_material_ = m; }

void StaticProblem::set_element_material(int element, const Material& m) {
  FEIO_ASSERT(element >= 0 && element < mesh_->num_elements());
  element_material_[static_cast<size_t>(element)] = m;
}

const Material& StaticProblem::material_of(int element) const {
  const auto& opt = element_material_[static_cast<size_t>(element)];
  return opt.has_value() ? *opt : default_material_;
}

void StaticProblem::fix(int node, bool x, bool y, double ux, double uy) {
  FEIO_ASSERT(node >= 0 && node < mesh_->num_nodes());
  constraints_.push_back(Constraint{node, x, y, ux, uy});
}

void StaticProblem::point_load(int node, geom::Vec2 f) {
  FEIO_ASSERT(node >= 0 && node < mesh_->num_nodes());
  loads_.push_back(PointLoad{node, f});
}

void StaticProblem::edge_pressure(int n1, int n2, double p) {
  FEIO_ASSERT(n1 >= 0 && n1 < mesh_->num_nodes());
  FEIO_ASSERT(n2 >= 0 && n2 < mesh_->num_nodes());
  FEIO_REQUIRE(n1 != n2, "pressure edge needs two distinct nodes");
  pressures_.push_back(EdgePressure{n1, n2, p});
}

void StaticProblem::set_temperature_load(std::vector<double> nodal_temperature,
                                         double expansion_coefficient,
                                         double reference_temperature) {
  FEIO_REQUIRE(static_cast<int>(nodal_temperature.size()) ==
                   mesh_->num_nodes(),
               "one temperature per node required");
  temperature_ = std::move(nodal_temperature);
  alpha_ = expansion_coefficient;
  t_ref_ = reference_temperature;
}

double StaticProblem::element_thermal_strain(int element) const {
  if (temperature_.empty()) return 0.0;
  const mesh::Element& el = mesh_->element(element);
  const double tbar = (temperature_[static_cast<size_t>(el.n[0])] +
                       temperature_[static_cast<size_t>(el.n[1])] +
                       temperature_[static_cast<size_t>(el.n[2])]) /
                      3.0;
  return alpha_ * (tbar - t_ref_);
}

int StaticProblem::dof_half_bandwidth() const {
  int node_bw = 0;
  for (const mesh::Element& el : mesh_->elements()) {
    for (int i = 0; i < 3; ++i) {
      for (int j = i + 1; j < 3; ++j) {
        node_bw = std::max(node_bw, std::abs(el.n[static_cast<size_t>(i)] -
                                             el.n[static_cast<size_t>(j)]));
      }
    }
  }
  return 2 * node_bw + 1;
}

namespace {

// The shared element-stiffness loop, templated over the storage the
// entries land in (BandedMatrix or SkylineMatrix — anything with add()).
// Each chunk of elements fills a private COO scratch (21 lower-triangle
// entries per CST), and the chunks are merged in chunk order — which is
// exactly ascending element order, so the accumulated sums are bitwise
// identical to a serial sweep at any thread count, in either storage.
template <typename Matrix>
void assemble_stiffness(const StaticProblem& p, Matrix& k) {
  struct Entry {
    int r, c;
    double v;
  };
  const mesh::TriMesh& mesh = p.mesh();
  const int ne = mesh.num_elements();
  const int chunks = util::chunk_count(ne, 0);
  std::vector<std::vector<Entry>> scratch(static_cast<size_t>(chunks));
  util::parallel_chunks(
      ne, chunks, [&](int chunk, std::int64_t begin, std::int64_t end) {
        std::vector<Entry>& out = scratch[static_cast<size_t>(chunk)];
        out.reserve(static_cast<size_t>(end - begin) * 21);
        for (std::int64_t e64 = begin; e64 < end; ++e64) {
          const int e = static_cast<int>(e64);
          const DMatrix d = constitutive(p.material_of(e), p.analysis());
          const ElementMatrices em =
              cst_matrices(mesh, e, d, p.analysis(), p.thickness());
          const mesh::Element& el = mesh.element(e);
          std::array<int, 6> dof{};
          for (int i = 0; i < 3; ++i) {
            dof[static_cast<size_t>(2 * i)] = 2 * el.n[static_cast<size_t>(i)];
            dof[static_cast<size_t>(2 * i + 1)] =
                2 * el.n[static_cast<size_t>(i)] + 1;
          }
          for (int r = 0; r < 6; ++r) {
            for (int c = 0; c <= r; ++c) {
              out.push_back(
                  Entry{dof[static_cast<size_t>(r)],
                        dof[static_cast<size_t>(c)],
                        em.k[static_cast<size_t>(r)][static_cast<size_t>(c)]});
            }
          }
        }
      });
  for (const std::vector<Entry>& out : scratch) {
    for (const Entry& en : out) k.add(en.r, en.c, en.v);
  }
}

template <typename Matrix>
void assemble_constrained(const StaticProblem& p, Matrix& k,
                          std::vector<double>& rhs,
                          std::vector<DirichletRhsOp>* record) {
  p.assemble_unconstrained(k, rhs);
  FEIO_REQUIRE(!p.constraints().empty(),
               "structure has no constraints (rigid-body motion)");
  for (const Constraint& c : p.constraints()) {
    if (c.fix_x) k.apply_dirichlet(2 * c.node, c.value_x, rhs, record);
    if (c.fix_y) k.apply_dirichlet(2 * c.node + 1, c.value_y, rhs, record);
  }
}

}  // namespace

std::vector<int> StaticProblem::dof_skyline_lows() const {
  const int nn = mesh_->num_nodes();
  std::vector<int> low_node(static_cast<size_t>(nn));
  std::iota(low_node.begin(), low_node.end(), 0);
  for (const mesh::Element& el : mesh_->elements()) {
    const int lo = std::min({el.n[0], el.n[1], el.n[2]});
    for (int n : el.n) {
      low_node[static_cast<size_t>(n)] =
          std::min(low_node[static_cast<size_t>(n)], lo);
    }
  }
  std::vector<int> low(static_cast<size_t>(num_dofs()));
  for (int n = 0; n < nn; ++n) {
    // Both dofs of node n reach down to the x-dof of its lowest-numbered
    // coupled node (which is n itself when nothing lower couples in).
    low[static_cast<size_t>(2 * n)] = 2 * low_node[static_cast<size_t>(n)];
    low[static_cast<size_t>(2 * n + 1)] = 2 * low_node[static_cast<size_t>(n)];
  }
  return low;
}

void StaticProblem::assemble(BandedMatrix& k, std::vector<double>& rhs,
                             std::vector<DirichletRhsOp>* record) const {
  assemble_constrained(*this, k, rhs, record);
}

void StaticProblem::assemble(SkylineMatrix& k, std::vector<double>& rhs,
                             std::vector<DirichletRhsOp>* record) const {
  assemble_constrained(*this, k, rhs, record);
}

void StaticProblem::assemble_unconstrained(BandedMatrix& k,
                                           std::vector<double>& rhs) const {
  FEIO_REQUIRE(k.size() == num_dofs(), "stiffness matrix size mismatch");
  FEIO_TRACE_SPAN(span, "fem.assemble");
  span.arg("elements", mesh_->num_elements());
  util::guard_check_dofs(num_dofs(), "stiffness dofs");
  FEIO_FAULT("fem.assemble");
  assemble_stiffness(*this, k);
  assemble_load_rhs(rhs);
}

void StaticProblem::assemble_unconstrained(SkylineMatrix& k,
                                           std::vector<double>& rhs) const {
  FEIO_REQUIRE(k.size() == num_dofs(), "stiffness matrix size mismatch");
  FEIO_TRACE_SPAN(span, "fem.assemble");
  span.arg("elements", mesh_->num_elements());
  util::guard_check_dofs(num_dofs(), "stiffness dofs");
  FEIO_FAULT("fem.assemble");
  assemble_stiffness(*this, k);
  assemble_load_rhs(rhs);
}

void StaticProblem::assemble_load_rhs(std::vector<double>& rhs) const {
  rhs.assign(static_cast<size_t>(num_dofs()), 0.0);

  // Equivalent nodal loads of the thermal strain: f = w * B^T D eps_th.
  // Same per-chunk scratch / in-order merge scheme as the stiffness loop.
  if (!temperature_.empty()) {
    struct Load {
      int dof;
      double f;
    };
    const int ne = mesh_->num_elements();
    const int chunks = util::chunk_count(ne, 0);
    std::vector<std::vector<Load>> scratch(static_cast<size_t>(chunks));
    util::parallel_chunks(
        ne, chunks, [&](int chunk, std::int64_t begin, std::int64_t end) {
          std::vector<Load>& out = scratch[static_cast<size_t>(chunk)];
          for (std::int64_t e64 = begin; e64 < end; ++e64) {
            const int e = static_cast<int>(e64);
            const double eth = element_thermal_strain(e);
            if (eth == 0.0) continue;
            const DMatrix d = constitutive(material_of(e), analysis_);
            const ElementMatrices em =
                cst_matrices(*mesh_, e, d, analysis_, thickness_);
            // Isotropic expansion: eps_th = eth in the three normal
            // components.
            std::array<double, 4> deps{};
            for (int r = 0; r < 4; ++r) {
              deps[static_cast<size_t>(r)] =
                  (d[static_cast<size_t>(r)][0] + d[static_cast<size_t>(r)][1] +
                   d[static_cast<size_t>(r)][2]) *
                  eth;
            }
            const mesh::Element& el = mesh_->element(e);
            for (int c = 0; c < 6; ++c) {
              double f = 0.0;
              for (int r = 0; r < 4; ++r) {
                f += em.b[static_cast<size_t>(r)][static_cast<size_t>(c)] *
                     deps[static_cast<size_t>(r)];
              }
              const int dof = 2 * el.n[static_cast<size_t>(c / 2)] + (c % 2);
              out.push_back(Load{dof, f * em.weight});
            }
          }
        });
    for (const std::vector<Load>& out : scratch) {
      for (const Load& ld : out) rhs[static_cast<size_t>(ld.dof)] += ld.f;
    }
  }

  for (const PointLoad& pl : loads_) {
    rhs[static_cast<size_t>(2 * pl.node)] += pl.force.x;
    rhs[static_cast<size_t>(2 * pl.node + 1)] += pl.force.y;
  }

  for (const EdgePressure& ep : pressures_) {
    const geom::Vec2 a = mesh_->pos(ep.n1);
    const geom::Vec2 b = mesh_->pos(ep.n2);
    const geom::Vec2 t = b - a;
    const double len = t.norm();
    FEIO_REQUIRE(len > 0.0, "zero-length pressure edge");
    const geom::Vec2 normal = t.perp() / len;  // left normal of n1->n2

    if (analysis_ == Analysis::kAxisymmetric) {
      // Consistent load for linearly-varying circumference 2*pi*r along
      // the edge: node i gets p * 2*pi * L * (2*r_i + r_j) / 6.
      const double two_pi = 2.0 * std::numbers::pi;
      const double f1 = ep.p * two_pi * len * (2.0 * a.x + b.x) / 6.0;
      const double f2 = ep.p * two_pi * len * (a.x + 2.0 * b.x) / 6.0;
      rhs[static_cast<size_t>(2 * ep.n1)] += normal.x * f1;
      rhs[static_cast<size_t>(2 * ep.n1 + 1)] += normal.y * f1;
      rhs[static_cast<size_t>(2 * ep.n2)] += normal.x * f2;
      rhs[static_cast<size_t>(2 * ep.n2 + 1)] += normal.y * f2;
    } else {
      const double f = ep.p * len * thickness_ / 2.0;
      for (int n : {ep.n1, ep.n2}) {
        rhs[static_cast<size_t>(2 * n)] += normal.x * f;
        rhs[static_cast<size_t>(2 * n + 1)] += normal.y * f;
      }
    }
  }
}

}  // namespace feio::fem
