// Weighted deficit-round-robin queue: the admission scheduler behind
// multi-tenant `feio serve`.
//
// Each lane (tenant) owns a FIFO and an integer weight. pop() serves lanes
// in deficit-round-robin order with unit job cost: every time a lane
// reaches the front of the active rotation it earns `weight` credits, and
// it keeps the front until its credits run out or its FIFO empties. Over
// any interval where two lanes both stay backlogged, lane A therefore
// completes weight_A : weight_B jobs relative to lane B — and a lane that
// goes idle loses its credits, so it cannot save up a burst that would
// starve the others later (the classic DRR no-starvation property).
//
// Deliberately NOT thread-safe: the serve loop already serializes admission
// and dispatch under its session mutex, and keeping this a plain data
// structure is what makes it unit-testable deterministically
// (tests/drr_test.cc proves the interleave job by job).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "util/error.h"

namespace feio::util {

template <typename T>
class DrrQueue {
 public:
  // Registers a lane with the given weight (>= 1) and returns its index.
  int add_lane(int weight) {
    FEIO_ASSERT(weight >= 1);
    lanes_.push_back(Lane{weight});
    return static_cast<int>(lanes_.size()) - 1;
  }

  int num_lanes() const { return static_cast<int>(lanes_.size()); }

  // Updates a lane's weight (>= 1); takes effect at the lane's next
  // quantum grant (an already-earned deficit is kept).
  void set_weight(int lane, int weight) {
    FEIO_ASSERT(weight >= 1);
    lanes_[static_cast<std::size_t>(lane)].weight = weight;
  }

  void push(int lane, T item) {
    Lane& l = lanes_[static_cast<std::size_t>(lane)];
    l.fifo.push_back(std::move(item));
    ++size_;
    if (!l.active) {
      // (Re-)entering the backlog: start from zero credit at the back of
      // the rotation, like every other waiting lane.
      l.active = true;
      l.deficit = 0;
      active_.push_back(lane);
    }
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  std::size_t lane_depth(int lane) const {
    return lanes_[static_cast<std::size_t>(lane)].fifo.size();
  }

  // The deficit-round-robin next job. Precondition: !empty().
  T pop() {
    FEIO_ASSERT(size_ > 0);
    while (true) {
      const int li = active_.front();
      Lane& l = lanes_[static_cast<std::size_t>(li)];
      if (l.fifo.empty()) {
        // Emptied by earlier pops this rotation; credits are forfeit.
        l.active = false;
        l.deficit = 0;
        active_.pop_front();
        continue;
      }
      if (l.deficit >= 1) {
        l.deficit -= 1;
        T item = std::move(l.fifo.front());
        l.fifo.pop_front();
        --size_;
        if (l.fifo.empty()) {
          l.active = false;
          l.deficit = 0;
          active_.pop_front();
        }
        return item;
      }
      // Out of credit: earn this round's quantum and rotate to the back.
      l.deficit += l.weight;
      active_.pop_front();
      active_.push_back(li);
    }
  }

 private:
  struct Lane {
    int weight = 1;
    std::int64_t deficit = 0;
    bool active = false;  // present in the rotation
    std::deque<T> fifo;
  };

  std::vector<Lane> lanes_;
  std::deque<int> active_;  // rotation of lanes with queued items
  std::size_t size_ = 0;
};

}  // namespace feio::util
