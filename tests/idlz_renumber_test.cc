#include <algorithm>
#include <numeric>
#include <random>

#include <gtest/gtest.h>

#include "idlz/idlz.h"
#include "idlz/renumber.h"
#include "mesh/bandwidth.h"
#include "mesh/validate.h"
#include "scenarios/scenarios.h"

namespace feio::idlz {
namespace {

mesh::TriMesh grid_mesh(int nx, int ny) {
  mesh::TriMesh m;
  for (int j = 0; j <= ny; ++j) {
    for (int i = 0; i <= nx; ++i) {
      m.add_node({static_cast<double>(i), static_cast<double>(j)});
    }
  }
  auto id = [nx](int i, int j) { return j * (nx + 1) + i; };
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      m.add_element(id(i, j), id(i + 1, j), id(i + 1, j + 1));
      m.add_element(id(i, j), id(i + 1, j + 1), id(i, j + 1));
    }
  }
  return m;
}

mesh::TriMesh shuffled(mesh::TriMesh m, unsigned seed) {
  std::vector<int> perm(static_cast<size_t>(m.num_nodes()));
  std::iota(perm.begin(), perm.end(), 0);
  std::mt19937 rng(seed);
  std::shuffle(perm.begin(), perm.end(), rng);
  m.renumber_nodes(perm);
  return m;
}

TEST(PermutationTest, IsBijection) {
  const mesh::TriMesh m = shuffled(grid_mesh(6, 4), 1);
  const std::vector<int> perm = cuthill_mckee_permutation(m, false);
  std::vector<char> seen(perm.size(), 0);
  for (int p : perm) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, static_cast<int>(perm.size()));
    ASSERT_FALSE(seen[static_cast<size_t>(p)]);
    seen[static_cast<size_t>(p)] = 1;
  }
}

TEST(RenumberTest, ReducesShuffledBandwidth) {
  mesh::TriMesh m = shuffled(grid_mesh(8, 4), 7);
  const int before = mesh::bandwidth(m);
  const RenumberReport rep = renumber(m);
  EXPECT_TRUE(rep.applied);
  EXPECT_LT(rep.bandwidth_after, before);
  EXPECT_EQ(rep.bandwidth_after, mesh::bandwidth(m));
  // A narrow strip graph should come close to its natural bandwidth.
  EXPECT_LE(rep.bandwidth_after, 8);
  EXPECT_TRUE(mesh::validate(m).ok());
}

TEST(RenumberTest, KeepsOptimalNumbering) {
  // A 1 x n strip numbered along its length is already near-optimal.
  mesh::TriMesh m = grid_mesh(1, 10);
  const int before = mesh::bandwidth(m);
  const RenumberReport rep = renumber(m);
  EXPECT_LE(rep.bandwidth_after, before);
  EXPECT_EQ(rep.bandwidth_before, before);
}

TEST(RenumberTest, GeometryUnchanged) {
  mesh::TriMesh m = shuffled(grid_mesh(5, 5), 3);
  double area_before = 0.0;
  m.orient_ccw();
  for (int e = 0; e < m.num_elements(); ++e) area_before += m.signed_area(e);
  renumber(m);
  double area_after = 0.0;
  for (int e = 0; e < m.num_elements(); ++e) {
    area_after += std::abs(m.signed_area(e));
  }
  EXPECT_NEAR(area_before, area_after, 1e-9);
}

TEST(RenumberTest, PermutationFieldMatchesApplication) {
  mesh::TriMesh m = shuffled(grid_mesh(6, 3), 11);
  mesh::TriMesh copy = m;
  const RenumberReport rep = renumber(m);
  ASSERT_TRUE(rep.applied);
  copy.renumber_nodes(rep.permutation);
  for (int n = 0; n < m.num_nodes(); ++n) {
    EXPECT_EQ(m.pos(n), copy.pos(n));
  }
}

TEST(RenumberTest, SchemesSelectable) {
  mesh::TriMesh m1 = shuffled(grid_mesh(7, 3), 5);
  mesh::TriMesh m2 = m1;
  const RenumberReport cm = renumber(m1, NumberingScheme::kCuthillMcKee);
  const RenumberReport rcm =
      renumber(m2, NumberingScheme::kReverseCuthillMcKee);
  EXPECT_EQ(cm.bandwidth_after, rcm.bandwidth_after);  // reversal preserves bw
  // RCM profile is never worse than CM's (George's theorem).
  EXPECT_LE(rcm.profile_after, cm.profile_after);
}

TEST(RenumberTest, DisconnectedComponentsHandled) {
  mesh::TriMesh m = grid_mesh(3, 3);
  const int base = m.num_nodes();
  // Second component far away.
  for (int i = 0; i < 3; ++i) m.add_node({100.0 + i, 100.0});
  m.add_element(base, base + 1, base + 2);
  mesh::TriMesh sh = shuffled(m, 2);
  EXPECT_NO_THROW(renumber(sh));
}

TEST(PseudoPeripheralTest, PicksStripEnd) {
  // In a path graph the pseudo-peripheral node is an end.
  std::vector<std::vector<int>> adj{{1}, {0, 2}, {1, 3}, {2, 4}, {3}};
  const int p = pseudo_peripheral_node(adj, 2);
  EXPECT_TRUE(p == 0 || p == 4);
}

TEST(PseudoPeripheralTest, IsolatedNode) {
  std::vector<std::vector<int>> adj{{}};
  EXPECT_EQ(pseudo_peripheral_node(adj, 0), 0);
}

TEST(PseudoPeripheralTest, PrefersLowDegreeNodeOfDeepestLevel) {
  // Regression for the pre-George–Liu bug: the old search returned the raw
  // BFS frontier node (adjacency discovery order), which here is node 4 —
  // a degree-2 interior corner. The deepest level from seed 0 is {4, 5};
  // the minimum-degree member is the true periphery, node 5 (degree 1).
  const std::vector<std::vector<int>> adj{
      {1}, {0, 2, 3}, {1, 3, 4}, {1, 2, 4, 5}, {2, 3}, {3}};
  EXPECT_EQ(pseudo_peripheral_node(adj, 0), 5);
}

// Every node appears exactly once in a permutation (new_index =
// perm[old_index]); returns a diagnostic on failure.
::testing::AssertionResult is_bijection(const std::vector<int>& perm) {
  std::vector<char> seen(perm.size(), 0);
  for (int p : perm) {
    if (p < 0 || p >= static_cast<int>(perm.size())) {
      return ::testing::AssertionFailure() << "index " << p << " out of range";
    }
    if (seen[static_cast<size_t>(p)]) {
      return ::testing::AssertionFailure() << "index " << p << " duplicated";
    }
    seen[static_cast<size_t>(p)] = 1;
  }
  return ::testing::AssertionSuccess();
}

// Two grids plus a lone triangle, all shuffled together: the CM walk must
// restart per component and still touch every node exactly once.
mesh::TriMesh three_components(unsigned seed) {
  mesh::TriMesh m = grid_mesh(5, 3);
  const int b1 = m.num_nodes();
  for (int j = 0; j <= 2; ++j) {
    for (int i = 0; i <= 3; ++i) {
      m.add_node({50.0 + i, 50.0 + j});
    }
  }
  auto id = [b1](int i, int j) { return b1 + j * 4 + i; };
  for (int j = 0; j < 2; ++j) {
    for (int i = 0; i < 3; ++i) {
      m.add_element(id(i, j), id(i + 1, j), id(i + 1, j + 1));
      m.add_element(id(i, j), id(i + 1, j + 1), id(i, j + 1));
    }
  }
  const int b2 = m.num_nodes();
  m.add_node({100.0, 0.0});
  m.add_node({101.0, 0.0});
  m.add_node({100.0, 1.0});
  m.add_element(b2, b2 + 1, b2 + 2);
  return shuffled(std::move(m), seed);
}

TEST(PermutationTest, DisconnectedMeshesStayBijective) {
  // Property test: across seeds and both CM directions, a multi-component
  // mesh always yields a full permutation — no node dropped or duplicated
  // at component boundaries.
  for (unsigned seed : {1u, 7u, 23u, 40u, 91u}) {
    const mesh::TriMesh m = three_components(seed);
    for (bool reverse : {false, true}) {
      const std::vector<int> perm = cuthill_mckee_permutation(m, reverse);
      ASSERT_EQ(perm.size(), static_cast<size_t>(m.num_nodes()));
      EXPECT_TRUE(is_bijection(perm))
          << "seed=" << seed << " reverse=" << reverse;
    }
    EXPECT_TRUE(is_bijection(hilbert_permutation(m))) << "seed=" << seed;
  }
}

TEST(RenumberTest, DisconnectedRenumberIsValidAndNeverWorse) {
  for (unsigned seed : {3u, 17u}) {
    mesh::TriMesh m = three_components(seed);
    const int before = mesh::bandwidth(m);
    const RenumberReport rep = renumber(m);
    EXPECT_LE(rep.bandwidth_after, before) << "seed=" << seed;
    EXPECT_TRUE(mesh::validate(m).ok()) << "seed=" << seed;
    if (rep.applied) {
      EXPECT_TRUE(is_bijection(rep.permutation)) << "seed=" << seed;
    }
  }
}

TEST(HilbertTest, DeterministicBijectionThatRestoresLocality) {
  // Purely geometric: shuffling the numbering does not change coordinates,
  // so the Hilbert order of a shuffled grid must undo the shuffle's damage
  // — the profile after reordering lands well under the shuffled one.
  mesh::TriMesh m = shuffled(grid_mesh(12, 12), 19);
  const std::vector<int> perm = hilbert_permutation(m);
  ASSERT_TRUE(is_bijection(perm));
  EXPECT_EQ(perm, hilbert_permutation(m));  // deterministic

  const long before = mesh::profile(m);
  m.renumber_nodes(perm);
  EXPECT_LT(mesh::profile(m), before / 2);
}

TEST(HilbertTest, SchemeSelectableThroughRenumber) {
  mesh::TriMesh m = shuffled(grid_mesh(10, 6), 13);
  const RenumberReport rep = renumber(m, NumberingScheme::kHilbert);
  ASSERT_TRUE(rep.applied);
  EXPECT_EQ(rep.used, NumberingScheme::kHilbert);
  EXPECT_TRUE(is_bijection(rep.permutation));
  EXPECT_TRUE(mesh::validate(m).ok());
}

TEST(RenumberTest, OrderingOverrideThroughRunOptions) {
  // The RunOptions ordering override beats the deck: kNone forces the pass
  // off even when the deck asked for it, and kRcm/kHilbert force the named
  // scheme on a deck that had renumbering disabled.
  IdlzCase c = scenarios::fig09_dsrv_hatch();
  c.options.renumber_nodes = true;

  RunOptions off;
  off.ordering = OrderingChoice::kNone;
  EXPECT_FALSE(run(c, off).renumbering.applied);

  c.options.renumber_nodes = false;
  RunOptions rcm;
  rcm.ordering = OrderingChoice::kRcm;
  const IdlzResult r1 = run(c, rcm);
  if (r1.renumbering.applied) {
    EXPECT_EQ(r1.renumbering.used, NumberingScheme::kReverseCuthillMcKee);
  }
  RunOptions hilbert;
  hilbert.ordering = OrderingChoice::kHilbert;
  const IdlzResult r2 = run(c, hilbert);
  if (r2.renumbering.applied) {
    EXPECT_EQ(r2.renumbering.used, NumberingScheme::kHilbert);
  }
  // Whether either scheme improved the deck or not, the pass never makes
  // the numbering worse than generation order.
  EXPECT_LE(r1.renumbering.bandwidth_after, r1.renumbering.bandwidth_before);
  EXPECT_LE(r2.renumbering.bandwidth_after, r2.renumbering.bandwidth_before);
}

TEST(RenumberTest, PipelineNonumbEquivalent) {
  // NONUMB=0 keeps the assembly numbering; NONUMB=1 never does worse.
  IdlzCase c = scenarios::fig09_dsrv_hatch();
  c.options.renumber_nodes = false;
  const IdlzResult plain = run(c);
  c.options.renumber_nodes = true;
  const IdlzResult renum = run(c);
  EXPECT_LE(renum.renumbering.bandwidth_after,
            plain.renumbering.bandwidth_after);
  EXPECT_EQ(plain.mesh.num_nodes(), renum.mesh.num_nodes());
  EXPECT_EQ(plain.mesh.num_elements(), renum.mesh.num_elements());
}

// The renumbering claim across the gallery: NONUMB=1 never increases the
// bandwidth, and the permutation keeps the mesh valid.
class RenumberSweep : public ::testing::TestWithParam<int> {};

TEST_P(RenumberSweep, NeverWorse) {
  const auto cases = scenarios::all_idealizations();
  auto c = cases[static_cast<size_t>(GetParam())].c;
  c.options.renumber_nodes = true;
  const IdlzResult r = run(c);
  EXPECT_LE(r.renumbering.bandwidth_after, r.renumbering.bandwidth_before);
  EXPECT_TRUE(mesh::validate(r.mesh).ok());
}

INSTANTIATE_TEST_SUITE_P(AllFigures, RenumberSweep, ::testing::Range(0, 22));

}  // namespace
}  // namespace feio::idlz
