#include "idlz/deck.h"

#include <sstream>

#include "cards/card_io.h"
#include "idlz/punch.h"
#include "util/strings.h"

namespace feio::idlz {
namespace {

using cards::as_alpha;
using cards::as_int;
using cards::as_real;
using cards::CardReader;
using cards::CardWriter;
using cards::Format;

const Format& fmt_i5() {
  static const Format f = Format::parse("(I5)");
  return f;
}
const Format& fmt_title() {
  static const Format f = Format::parse("(12A6)");
  return f;
}
const Format& fmt_type3() {
  static const Format f = Format::parse("(4I5)");
  return f;
}
const Format& fmt_type4() {
  static const Format f = Format::parse("(5I5,5X,2I5)");
  return f;
}
const Format& fmt_type5() {
  static const Format f = Format::parse("(2I5)");
  return f;
}
const Format& fmt_type6() {
  static const Format f = Format::parse("(4I5,5F8.4)");
  return f;
}

std::string read_title(CardReader& reader) {
  const auto fields = reader.read(fmt_title());
  std::string title;
  for (const auto& f : fields) title += as_alpha(f);
  return std::string(trim(title));
}

}  // namespace

std::vector<IdlzCase> read_deck(std::istream& in) {
  CardReader reader(in);
  const int nset = static_cast<int>(as_int(reader.read(fmt_i5())[0]));
  FEIO_REQUIRE(nset >= 1, "NSET must be at least 1");
  FEIO_REQUIRE(nset <= 10000, "unreasonable NSET");

  std::vector<IdlzCase> cases;
  cases.reserve(static_cast<size_t>(nset));
  for (int set = 0; set < nset; ++set) {
    IdlzCase c;
    c.title = read_title(reader);

    const auto t3 = reader.read(fmt_type3());
    c.options.make_plots = as_int(t3[0]) != 0;
    c.options.renumber_nodes = as_int(t3[1]) != 0;
    c.options.punch_output = as_int(t3[2]) != 0;
    const int nsbdvn = static_cast<int>(as_int(t3[3]));
    FEIO_REQUIRE(nsbdvn >= 1, "NSBDVN must be at least 1");

    for (int i = 0; i < nsbdvn; ++i) {
      const auto t4 = reader.read(fmt_type4());
      Subdivision s;
      s.id = static_cast<int>(as_int(t4[0]));
      s.k1 = static_cast<int>(as_int(t4[1]));
      s.l1 = static_cast<int>(as_int(t4[2]));
      s.k2 = static_cast<int>(as_int(t4[3]));
      s.l2 = static_cast<int>(as_int(t4[4]));
      s.ntaprw = static_cast<int>(as_int(t4[5]));
      s.ntapcm = static_cast<int>(as_int(t4[6]));
      c.subdivisions.push_back(s);
    }

    for (int i = 0; i < nsbdvn; ++i) {
      const auto t5 = reader.read(fmt_type5());
      ShapingSpec spec;
      spec.subdivision_id = static_cast<int>(as_int(t5[0]));
      const int nlines = static_cast<int>(as_int(t5[1]));
      FEIO_REQUIRE(nlines >= 1,
                   "at least one line segment must be used to deform each "
                   "subdivision (General Restriction 3)");
      for (int j = 0; j < nlines; ++j) {
        const auto t6 = reader.read(fmt_type6());
        ShapeLine line;
        line.k1 = static_cast<int>(as_int(t6[0]));
        line.l1 = static_cast<int>(as_int(t6[1]));
        line.k2 = static_cast<int>(as_int(t6[2]));
        line.l2 = static_cast<int>(as_int(t6[3]));
        line.p1 = {as_real(t6[4]), as_real(t6[5])};
        line.p2 = {as_real(t6[6]), as_real(t6[7])};
        line.radius = as_real(t6[8]);
        spec.lines.push_back(line);
      }
      c.shaping.push_back(std::move(spec));
    }

    c.options.nodal_format = std::string(trim(read_title(reader)));
    c.options.element_format = std::string(trim(read_title(reader)));
    if (c.options.nodal_format.empty()) {
      c.options.nodal_format = kDefaultNodalFormat;
    }
    if (c.options.element_format.empty()) {
      c.options.element_format = kDefaultElementFormat;
    }
    cases.push_back(std::move(c));
  }
  return cases;
}

std::vector<IdlzCase> read_deck_string(const std::string& deck) {
  std::istringstream in(deck);
  return read_deck(in);
}

std::string write_deck(const std::vector<IdlzCase>& cases) {
  CardWriter out;
  out.write({static_cast<long>(cases.size())}, fmt_i5());
  for (const IdlzCase& c : cases) {
    out.write_raw(c.title);
    out.write({static_cast<long>(c.options.make_plots ? 1 : 0),
               static_cast<long>(c.options.renumber_nodes ? 1 : 0),
               static_cast<long>(c.options.punch_output ? 1 : 0),
               static_cast<long>(c.subdivisions.size())},
              fmt_type3());
    for (const Subdivision& s : c.subdivisions) {
      out.write({static_cast<long>(s.id), static_cast<long>(s.k1),
                 static_cast<long>(s.l1), static_cast<long>(s.k2),
                 static_cast<long>(s.l2), static_cast<long>(s.ntaprw),
                 static_cast<long>(s.ntapcm)},
                fmt_type4());
    }
    for (const ShapingSpec& spec : c.shaping) {
      out.write({static_cast<long>(spec.subdivision_id),
                 static_cast<long>(spec.lines.size())},
                fmt_type5());
      for (const ShapeLine& l : spec.lines) {
        out.write({static_cast<long>(l.k1), static_cast<long>(l.l1),
                   static_cast<long>(l.k2), static_cast<long>(l.l2), l.p1.x,
                   l.p1.y, l.p2.x, l.p2.y, l.radius},
                  fmt_type6());
      }
    }
    out.write_raw(c.options.nodal_format);
    out.write_raw(c.options.element_format);
  }
  return out.str();
}

}  // namespace feio::idlz
