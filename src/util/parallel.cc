#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "util/cancel.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/guard.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace feio::util {
namespace {

std::atomic<int> g_default_threads{1};

thread_local bool tl_on_worker = false;

std::int64_t chunk_begin(std::int64_t n, int chunks, int c) {
  return n * static_cast<std::int64_t>(c) / chunks;
}

}  // namespace

int hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

bool parse_thread_count(std::string_view text, int& out) {
  if (text == "all") {
    out = 0;
    return true;
  }
  if (text.empty() || text.size() > 9) return false;  // 9 digits can't overflow
  long value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  if (value < 1) return false;
  out = static_cast<int>(value);
  return true;
}

void set_default_threads(int n) {
  g_default_threads.store(n <= 0 ? hardware_threads() : n,
                          std::memory_order_relaxed);
}

int default_threads() {
  return g_default_threads.load(std::memory_order_relaxed);
}

int resolve_threads(int threads) {
  if (threads == 0) return default_threads();
  if (threads < 0) return hardware_threads();
  return threads;
}

int chunk_count(std::int64_t n, int threads) {
  const std::int64_t t = resolve_threads(threads);
  return static_cast<int>(std::max<std::int64_t>(1, std::min(t, n)));
}

ScopedThreads::ScopedThreads(int n) {
  if (n == 0) return;
  saved_ = default_threads();
  active_ = true;
  set_default_threads(n);
}

ScopedThreads::~ScopedThreads() {
  if (active_) set_default_threads(saved_);
}

ThreadPool::ThreadPool(int workers) {
  const int n = std::max(0, workers);
  threads_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  tl_on_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) lock.wait(cv_);
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

bool ThreadPool::on_worker_thread() { return tl_on_worker; }

void ThreadPool::post(std::function<void()> task) {
  FEIO_ASSERT(!threads_.empty());
  {
    MutexLock lock(mu_);
    queue_.emplace_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::run_chunks(std::int64_t n, int chunks,
                            const ChunkBody& body) {
  if (n <= 0) return;
  const int c_total =
      static_cast<int>(std::min<std::int64_t>(std::max(chunks, 1), n));

  // The submitting thread's robustness context, captured once here and
  // re-installed on whichever thread executes each chunk. Chunks inherit
  // the job's cancel token, guard limits and armed faults exactly as if
  // they ran inline on the submitter.
  const CancelToken* cancel = CancelToken::current();
  const GuardLimits* guard = current_guard();
  detail::FaultSet* faults = FaultScope::current();

  // Chunk-boundary observability: each chunk gets a span on whatever
  // thread (worker or submitter) executes it, plus scheduling metrics.
  // Costs one atomic load per chunk when tracing/metrics are off; chunks
  // are coarse, so this stays under the bench regression budget.
  const ChunkBody traced_body = [&body, cancel, guard, faults](
                                    int c, std::int64_t begin,
                                    std::int64_t end) {
    ScopedCancel inherit_cancel(cancel);
    ScopedGuard inherit_guard(guard);
    ScopedFaultInherit inherit_faults(faults);
    if (cancel != nullptr) cancel->check("parallel.chunk");
    FEIO_TRACE_SPAN(span, "parallel.chunk");
    span.arg("chunk", c);
    span.arg("items", end - begin);
    FEIO_METRIC_ADD("parallel.chunks", 1);
    FEIO_METRIC_RECORD("parallel.chunk_items",
                       static_cast<double>(end - begin));
    body(c, begin, end);
  };

  // Serial path: one chunk, no workers, or a nested call from a worker
  // thread. Runs the *same* chunk partition in ascending order, so results
  // and exception choice match the parallel path exactly.
  if (c_total == 1 || threads_.empty() || tl_on_worker) {
    std::exception_ptr first;
    for (int c = 0; c < c_total; ++c) {
      try {
        traced_body(c, chunk_begin(n, c_total, c),
                    chunk_begin(n, c_total, c + 1));
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
    return;
  }

  // Shared state outlives run_chunks: a queued helper that only wakes after
  // every chunk is claimed must find valid memory, so everything it touches
  // lives in the shared_ptr. The body pointer is only dereferenced for a
  // successfully claimed chunk, all of which finish before we return.
  struct Batch {
    std::int64_t n = 0;
    int chunks = 0;
    const ChunkBody* body = nullptr;
    std::atomic<int> next{0};
    std::atomic<int> remaining{0};
    // errors is deliberately NOT guarded_by(mu): each slot c is written by
    // exactly the thread that claimed chunk c (claims are unique via the
    // `next` fetch_add), and all writes are published to the waiting reader
    // by the acq_rel fetch_sub on `remaining` before `done` is signalled.
    std::vector<std::exception_ptr> errors;
    Mutex mu;
    std::condition_variable done_cv;
    bool done FEIO_GUARDED_BY(mu) = false;
  };
  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->chunks = c_total;
  batch->body = &traced_body;
  batch->remaining.store(c_total, std::memory_order_relaxed);
  batch->errors.resize(static_cast<size_t>(c_total));

  auto claim_loop = [batch] {
    for (;;) {
      const int c = batch->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= batch->chunks) return;
      try {
        (*batch->body)(c, chunk_begin(batch->n, batch->chunks, c),
                       chunk_begin(batch->n, batch->chunks, c + 1));
      } catch (...) {
        batch->errors[static_cast<size_t>(c)] = std::current_exception();
      }
      if (batch->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        MutexLock lock(batch->mu);
        batch->done = true;
        batch->done_cv.notify_all();
      }
    }
  };

  {
    MutexLock lock(mu_);
    const int helpers = std::min(c_total - 1, workers());
    for (int i = 0; i < helpers; ++i) queue_.emplace_back(claim_loop);
  }
  cv_.notify_all();

  claim_loop();  // the submitting thread is a full participant

  {
    MutexLock lock(batch->mu);
    while (!batch->done) lock.wait(batch->done_cv);
  }
  // Lowest-indexed failure wins — the one a serial sweep would throw first.
  for (const std::exception_ptr& e : batch->errors) {
    if (e) std::rethrow_exception(e);
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(hardware_threads() - 1);
  return pool;
}

void parallel_chunks(std::int64_t n, int chunks,
                     const ThreadPool::ChunkBody& body) {
  ThreadPool::shared().run_chunks(n, chunks, body);
}

void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& fn,
                  int threads) {
  parallel_chunks(n, chunk_count(n, threads),
                  [&fn](int, std::int64_t begin, std::int64_t end) {
                    for (std::int64_t i = begin; i < end; ++i) fn(i);
                  });
}

}  // namespace feio::util
