#include "plot/mesh_plot.h"

#include <set>
#include <string>

#include "mesh/topology.h"

namespace feio::plot {

void draw_mesh(const mesh::TriMesh& mesh, PlotFile& out,
               const MeshPlotOptions& opts) {
  const mesh::Topology topo(mesh);
  std::set<mesh::Edge> boundary(topo.boundary_edges().begin(),
                                topo.boundary_edges().end());

  std::set<mesh::Edge> drawn;
  for (const mesh::Element& el : mesh.elements()) {
    for (int k = 0; k < 3; ++k) {
      const mesh::Edge e(el.n[static_cast<size_t>(k)],
                         el.n[static_cast<size_t>((k + 1) % 3)]);
      if (!drawn.insert(e).second) continue;
      const bool is_boundary = opts.draw_boundary && boundary.count(e) > 0;
      out.line(mesh.pos(e.a), mesh.pos(e.b),
               is_boundary ? Pen::kBoundary : Pen::kMesh);
    }
  }

  if (opts.number_nodes) {
    for (int i = 0; i < mesh.num_nodes(); ++i) {
      out.text(mesh.pos(i), std::to_string(i + 1), opts.label_size);
    }
  }
  if (opts.number_elements) {
    for (int e = 0; e < mesh.num_elements(); ++e) {
      const auto c = mesh.corners(e);
      const geom::Vec2 centroid = (c[0] + c[1] + c[2]) / 3.0;
      out.text(centroid, std::to_string(e + 1), opts.label_size);
    }
  }
}

PlotFile plot_mesh(const mesh::TriMesh& mesh, std::string title,
                   const MeshPlotOptions& opts) {
  PlotFile out(std::move(title));
  draw_mesh(mesh, out, opts);
  return out;
}

}  // namespace feio::plot
