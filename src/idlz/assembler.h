// Assembles an IDLZ subdivision list into the global integer grid:
// numbers the nodes and creates the triangular elements.
//
// Nodes are identified by their integer grid point, so adjacent subdivisions
// that meet along a common run of grid points automatically share nodes —
// this is how the FORTRAN original (array NUMBER(41,61)) made assemblages
// conforming. Numbering is done subdivision by subdivision, within each
// subdivision left-to-right and bottom-to-top, exactly the "arbitrary
// scheme with programming convenience the prime consideration" the paper
// describes; the optional bandwidth renumbering (renumber.h) replaces it.
#pragma once

#include <map>
#include <vector>

#include "idlz/subdivision.h"
#include "mesh/tri_mesh.h"

namespace feio::idlz {

// Numerical restrictions of Table 2 (IDLZ) — configurable so modern callers
// can exceed the 1970 core sizes while tests can still enforce them.
struct Limits {
  int max_subdivisions = 50;
  int max_elements = 850;
  int max_nodes = 500;
  int max_k = 40;  // maximum horizontal integer coordinate
  int max_l = 60;  // maximum vertical integer coordinate
  double max_arc_subtended_deg = 90.0;

  // The historical defaults from Table 2 of the paper.
  static Limits paper() { return Limits{}; }
  // Effectively unbounded, for capacity benchmarks.
  static Limits unlimited();
};

struct Assembly {
  // Node index at each covered grid point.
  std::map<GridPoint, int> node_at;
  // Inverse map: grid point of each node.
  std::vector<GridPoint> grid_of;
  // Mesh whose node positions are the raw integer coordinates (the
  // "initial representation" the user drew); shaping moves them later.
  mesh::TriMesh mesh;
  // node ids belonging to each subdivision, in strip order (for the
  // per-subdivision plots of Figure 11c and for shaping).
  std::vector<std::vector<int>> subdivision_nodes;
  // element ids created by each subdivision.
  std::vector<std::vector<int>> subdivision_elements;
};

// How ties are broken when both chains can advance (the square cells of a
// rectangle): kUniform draws every diagonal the same way (the "/" pattern
// of the paper's Figure 2); kAlternating flips direction cell by cell
// (the union-jack pattern), which distributes the diagonal's directional
// bias — bench_ablation measures what that buys.
enum class DiagonalStyle {
  kUniform,
  kAlternating,
};

// Numbers nodes and creates elements for the assemblage. Validates every
// subdivision and enforces `limits`. Throws feio::Error on violations.
Assembly assemble(const std::vector<Subdivision>& subdivisions,
                  const Limits& limits = Limits::paper(),
                  DiagonalStyle diagonals = DiagonalStyle::kUniform);

// Triangulates the strip between two node chains laid left-to-right along
// the cross axis. `bottom` and `top` are node ids; `pos` gives each chain
// node's cross-axis coordinate. Appends (a, b, c) triples to `mesh`.
// Exposed for unit testing of the fan/alternation pattern.
void triangulate_strip(const std::vector<int>& bottom,
                       const std::vector<double>& bottom_pos,
                       const std::vector<int>& top,
                       const std::vector<double>& top_pos,
                       mesh::TriMesh& mesh, std::vector<int>* new_elements,
                       DiagonalStyle diagonals = DiagonalStyle::kUniform);

}  // namespace feio::idlz
