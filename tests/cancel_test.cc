// Tests for the robustness primitives (docs/ROBUSTNESS.md): deadlines and
// cooperative cancellation (util/cancel.h), admission guards (util/guard.h)
// and fault injection (util/fault.h), plus their plumbing through
// RunOptions, run_checked and util::parallel_chunks.
#include "util/cancel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "feio/run_options.h"
#include "idlz/idlz.h"
#include "ospl/ospl.h"
#include "scenarios/pipeline_bench.h"
#include "util/diag.h"
#include "util/fault.h"
#include "util/guard.h"
#include "util/parallel.h"

using namespace feio;

namespace {

// --- CancelToken -----------------------------------------------------------

TEST(CancelTest, DefaultTokenNeverExpiresUntilCancelled) {
  util::CancelToken t;
  EXPECT_FALSE(t.expired());
  EXPECT_NO_THROW(t.check("test.site"));
  t.cancel();
  EXPECT_TRUE(t.expired());
  EXPECT_THROW(t.check("test.site"), util::Cancelled);
}

TEST(CancelTest, ZeroBudgetIsAlreadyExpired) {
  const util::CancelToken t{std::chrono::nanoseconds(0)};
  EXPECT_TRUE(t.expired());
  EXPECT_THROW(t.check("test.site"), util::Cancelled);
}

TEST(CancelTest, GenerousBudgetDoesNotFire) {
  const util::CancelToken t{std::chrono::hours(1)};
  EXPECT_FALSE(t.expired());
  EXPECT_NO_THROW(t.check("test.site"));
}

TEST(CancelTest, CancelledCarriesCodeAndSite) {
  util::CancelToken t;
  t.cancel();
  try {
    t.check("fem.factorize.panel");
    FAIL() << "expected Cancelled";
  } catch (const util::Cancelled& e) {
    EXPECT_EQ(e.code(), "E-RES-005");
    EXPECT_NE(std::string(e.what()).find("fem.factorize.panel"),
              std::string::npos);
  }
  // Cancelled must be catchable as ResourceError (run_checked relies on it).
  try {
    t.check("site");
    FAIL() << "expected Cancelled";
  } catch (const ResourceError& e) {
    EXPECT_EQ(e.code(), "E-RES-005");
  }
}

TEST(CancelTest, ScopedCancelInstallsAndRestores) {
  EXPECT_EQ(util::CancelToken::current(), nullptr);
  util::CancelToken outer;
  {
    util::ScopedCancel a(&outer);
    EXPECT_EQ(util::CancelToken::current(), &outer);
    {
      util::ScopedCancel noop(nullptr);  // null = keep the surrounding token
      EXPECT_EQ(util::CancelToken::current(), &outer);
      util::CancelToken inner;
      util::ScopedCancel b(&inner);
      EXPECT_EQ(util::CancelToken::current(), &inner);
    }
    EXPECT_EQ(util::CancelToken::current(), &outer);
  }
  EXPECT_EQ(util::CancelToken::current(), nullptr);
}

TEST(CancelTest, CheckMacroIsNoOpWithoutAToken) {
  ASSERT_EQ(util::CancelToken::current(), nullptr);
  EXPECT_NO_THROW(FEIO_CHECK_CANCEL("test.site"));
}

// --- Cancellation through the pipeline entry points ------------------------

TEST(CancelTest, ExpiredTokenMakesIdlzRunCheckedReportDeadline) {
  const idlz::IdlzCase c = scenarios::strip_case(10, 12, 2);
  const util::CancelToken expired{std::chrono::nanoseconds(0)};
  RunOptions ro;
  ro.cancel = &expired;
  DiagSink sink;
  EXPECT_FALSE(idlz::run_checked(c, sink, ro).has_value());
  ASSERT_FALSE(sink.ok());
  bool found = false;
  for (const Diag& d : sink.diags()) found |= d.code == "E-RES-005";
  EXPECT_TRUE(found) << sink.render_text();
}

TEST(CancelTest, UnexpiredTokenLeavesOutputByteIdentical) {
  const idlz::IdlzCase c = scenarios::strip_case(8, 10, 2);
  const idlz::IdlzResult plain = idlz::run(c);
  const util::CancelToken roomy{std::chrono::hours(1)};
  RunOptions ro;
  ro.cancel = &roomy;
  const idlz::IdlzResult guarded = idlz::run(c, ro);
  EXPECT_EQ(guarded.nodal_cards, plain.nodal_cards);
  EXPECT_EQ(guarded.element_cards, plain.element_cards);
}

TEST(CancelTest, ExpiredTokenMakesOsplRunCheckedReportDeadline) {
  ospl::OsplCase c;
  c.mesh.add_node({0.0, 0.0});
  c.mesh.add_node({1.0, 0.0});
  c.mesh.add_node({0.0, 1.0});
  c.mesh.add_element(0, 1, 2);
  c.mesh.classify_boundary();
  c.values = {0.0, 1.0, 2.0};
  c.title1 = "CANCEL TEST";
  const util::CancelToken expired{std::chrono::nanoseconds(0)};
  RunOptions ro;
  ro.cancel = &expired;
  DiagSink sink;
  EXPECT_FALSE(ospl::run_checked(c, sink, ro).has_value());
  bool found = false;
  for (const Diag& d : sink.diags()) found |= d.code == "E-RES-005";
  EXPECT_TRUE(found) << sink.render_text();
}

// --- Cancellation across the thread pool -----------------------------------

TEST(CancelTest, ParallelChunksObserveTheSubmittersToken) {
  util::ThreadPool pool(3);
  util::CancelToken t;
  t.cancel();
  util::ScopedCancel scope(&t);
  std::atomic<int> ran{0};
  try {
    pool.run_chunks(1000, 8, [&](int, std::int64_t, std::int64_t) { ran++; });
    FAIL() << "expected Cancelled from the chunk boundary check";
  } catch (const util::Cancelled& e) {
    EXPECT_EQ(e.code(), "E-RES-005");
  }
  EXPECT_EQ(ran, 0);  // every chunk checked before running its body
}

TEST(CancelTest, MidRunCancelStopsRemainingChunks) {
  util::ThreadPool pool(2);
  util::CancelToken t;
  util::ScopedCancel scope(&t);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.run_chunks(64, 64,
                      [&](int c, std::int64_t, std::int64_t) {
                        ran++;
                        if (c == 0) t.cancel();  // workers see it at the
                                                 // next chunk boundary
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(1));
                      }),
      util::Cancelled);
  EXPECT_LT(ran.load(), 64);
}

// --- Admission guards ------------------------------------------------------

TEST(GuardTest, EmptyLimitsAdmitEverything) {
  const util::GuardLimits none;
  EXPECT_FALSE(util::admit_deck("job", 1 << 20, 1 << 30, none).has_value());
  util::ScopedGuard scope(&none);
  EXPECT_NO_THROW(util::guard_check_dofs(1 << 30, "dofs"));
  EXPECT_NO_THROW(util::guard_check_factor_bytes(std::int64_t{1} << 40, "b"));
}

TEST(GuardTest, AdmitDeckRejectsOversizedDecks) {
  util::GuardLimits limits;
  limits.max_deck_cards = 10;
  limits.max_deck_bytes = 100;
  EXPECT_FALSE(util::admit_deck("job", 10, 100, limits).has_value());
  const auto by_cards = util::admit_deck("job", 11, 50, limits);
  ASSERT_TRUE(by_cards.has_value());
  EXPECT_EQ(by_cards->code, "E-RES-001");
  const auto by_bytes = util::admit_deck("job", 5, 101, limits);
  ASSERT_TRUE(by_bytes.has_value());
  EXPECT_EQ(by_bytes->code, "E-RES-001");
}

TEST(GuardTest, InRunGuardsThrowTheDocumentedCodes) {
  util::GuardLimits limits;
  limits.max_dofs = 100;
  limits.max_factor_bytes = 1000;
  util::ScopedGuard scope(&limits);
  EXPECT_NO_THROW(util::guard_check_dofs(100, "dofs"));
  try {
    util::guard_check_dofs(101, "dofs");
    FAIL() << "expected ResourceError";
  } catch (const ResourceError& e) {
    EXPECT_EQ(e.code(), "E-RES-002");
  }
  try {
    util::guard_check_factor_bytes(1001, "factor bytes");
    FAIL() << "expected ResourceError";
  } catch (const ResourceError& e) {
    EXPECT_EQ(e.code(), "E-RES-003");
  }
}

TEST(GuardTest, GuardsReachTheIdlzPipeline) {
  util::GuardLimits limits;
  limits.max_dofs = 4;  // strip_case(10, 12, 2) numbers far more nodes
  util::ScopedGuard scope(&limits);
  const idlz::IdlzCase c = scenarios::strip_case(10, 12, 2);
  DiagSink sink;
  EXPECT_FALSE(idlz::run_checked(c, sink).has_value());
  bool found = false;
  for (const Diag& d : sink.diags()) found |= d.code == "E-RES-002";
  EXPECT_TRUE(found) << sink.render_text();
}

TEST(GuardTest, GuardsAreInheritedAcrossParallelChunks) {
  util::GuardLimits limits;
  limits.max_dofs = 7;
  util::ScopedGuard scope(&limits);
  util::ThreadPool pool(2);
  std::atomic<int> threw{0};
  pool.run_chunks(4, 4, [&](int, std::int64_t, std::int64_t) {
    try {
      util::guard_check_dofs(8, "chunk dofs");
    } catch (const ResourceError&) {
      threw++;
    }
  });
  EXPECT_EQ(threw, 4);
}

TEST(GuardTest, ServeDefaultsAreBoundedAndRoomy) {
  const util::GuardLimits g = util::GuardLimits::serve_defaults();
  EXPECT_GT(g.max_deck_cards, 0);
  EXPECT_GT(g.max_deck_bytes, 0);
  EXPECT_GT(g.max_dofs, 0);
  EXPECT_GT(g.max_factor_bytes, 0);
}

// --- Fault injection -------------------------------------------------------

TEST(FaultTest, RegistryIsSortedAndCoversThePipeline) {
  const std::vector<std::string>& sites = util::fault_sites();
  EXPECT_GE(sites.size(), 10u);
  EXPECT_TRUE(std::is_sorted(sites.begin(), sites.end()));
  for (const char* site :
       {"card.read", "deck.parse", "fem.factorize.panel", "idlz.assemble",
        "ospl.contour", "report.write"}) {
    EXPECT_TRUE(std::binary_search(sites.begin(), sites.end(),
                                   std::string(site)))
        << site;
  }
}

TEST(FaultTest, ArmRejectsBadSpecs) {
  if (!util::kFaultInjectionEnabled) {
    // Spec validation is unreachable when arming itself is rejected; the
    // rejection path is covered by ArmMatchesTheBuildConfiguration.
    GTEST_SKIP() << "build lacks -DFEIO_FAULT_INJECTION=ON";
  }
  util::FaultScope scope;
  std::string error;
  EXPECT_FALSE(scope.arm("", error));
  EXPECT_FALSE(scope.arm("no.such.site", error));
  EXPECT_NE(error.find("no.such.site"), std::string::npos);
  EXPECT_FALSE(scope.arm("card.read:", error));
  EXPECT_FALSE(scope.arm("card.read:0", error));
  EXPECT_FALSE(scope.arm("card.read:x", error));
}

TEST(FaultTest, ArmMatchesTheBuildConfiguration) {
  util::FaultScope scope;
  std::string error;
  const bool armed = scope.arm("card.read", error);
  EXPECT_EQ(armed, util::kFaultInjectionEnabled);
  if (!armed) {
    // Without the hooks compiled in, arming must fail loudly rather than
    // silently never fire.
    EXPECT_NE(error.find("FEIO_FAULT_INJECTION"), std::string::npos) << error;
  }
}

TEST(FaultTest, ArmedSiteFiresOnceWithTheDocumentedCode) {
  if (!util::kFaultInjectionEnabled) {
    GTEST_SKIP() << "build lacks -DFEIO_FAULT_INJECTION=ON";
  }
  util::FaultScope scope;
  std::string error;
  ASSERT_TRUE(scope.arm("idlz.shape", error)) << error;
  const idlz::IdlzCase c = scenarios::strip_case(8, 10, 2);
  DiagSink sink;
  EXPECT_FALSE(idlz::run_checked(c, sink).has_value());
  bool found = false;
  for (const Diag& d : sink.diags()) found |= d.code == "E-RES-006";
  EXPECT_TRUE(found) << sink.render_text();
  // Fire-once: the same scope never fires again, so a rerun succeeds.
  DiagSink clean;
  EXPECT_TRUE(idlz::run_checked(c, clean).has_value()) << clean.render_text();
}

TEST(FaultTest, FreshScopeMasksAnOuterArmedSet) {
  if (!util::kFaultInjectionEnabled) {
    GTEST_SKIP() << "build lacks -DFEIO_FAULT_INJECTION=ON";
  }
  util::FaultScope outer;
  std::string error;
  ASSERT_TRUE(outer.arm("idlz.shape", error)) << error;
  const idlz::IdlzCase c = scenarios::strip_case(8, 10, 2);
  {
    util::FaultScope mask;  // serve's per-job isolation barrier
    DiagSink sink;
    EXPECT_TRUE(idlz::run_checked(c, sink).has_value()) << sink.render_text();
  }
  // The outer scope is live again and still armed.
  DiagSink sink;
  EXPECT_FALSE(idlz::run_checked(c, sink).has_value());
}

}  // namespace
