#include "plot/deformed.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "mesh/topology.h"
#include "plot/mesh_plot.h"
#include "util/error.h"
#include "util/strings.h"

namespace feio::plot {

double draw_deformed(const mesh::TriMesh& mesh,
                     const std::vector<geom::Vec2>& displacement,
                     PlotFile& out, const DeformedPlotOptions& opts) {
  FEIO_REQUIRE(static_cast<int>(displacement.size()) == mesh.num_nodes(),
               "one displacement per node required");

  double scale = opts.scale;
  if (scale <= 0.0) {
    double max_disp = 0.0;
    for (const geom::Vec2& d : displacement) {
      max_disp = std::max(max_disp, d.norm());
    }
    const geom::BBox box = mesh.bounds();
    const double diag = std::hypot(box.width(), box.height());
    scale = max_disp > 0.0 ? 0.05 * diag / max_disp : 1.0;
  }

  if (opts.show_undeformed) {
    const mesh::Topology topo(mesh);
    for (const mesh::Edge& e : topo.boundary_edges()) {
      out.line(mesh.pos(e.a), mesh.pos(e.b), Pen::kGridAid);
    }
  }

  mesh::TriMesh deformed = mesh;
  for (int n = 0; n < mesh.num_nodes(); ++n) {
    deformed.set_pos(n, mesh.pos(n) +
                            displacement[static_cast<size_t>(n)] * scale);
  }
  MeshPlotOptions mp;
  mp.draw_boundary = true;
  draw_mesh(deformed, out, mp);
  return scale;
}

PlotFile plot_deformed(const mesh::TriMesh& mesh,
                       const std::vector<geom::Vec2>& displacement,
                       std::string title, const DeformedPlotOptions& opts) {
  PlotFile out;
  const double scale = draw_deformed(mesh, displacement, out, opts);
  out.set_title(title + "  (DEFLECTIONS x" + fixed(scale, 1) + ")");
  return out;
}

}  // namespace feio::plot
