std::string render() {
  std::string out = "{\"schema\": \"feio.report/1\", ";
  // Seeded: a payload family tools/check_report.py does not accept.
  out += "\"payload_schema\": \"feio.bench.rogue/1\"}";
  return out;
}
