#include <gtest/gtest.h>

#include "idlz/subdivision.h"
#include "util/error.h"

namespace feio::idlz {
namespace {

Subdivision make(int k1, int l1, int k2, int l2, int ntaprw = 0,
                 int ntapcm = 0) {
  Subdivision s;
  s.id = 1;
  s.k1 = k1;
  s.l1 = l1;
  s.k2 = k2;
  s.l2 = l2;
  s.ntaprw = ntaprw;
  s.ntapcm = ntapcm;
  return s;
}

TEST(SubdivisionTest, RectangleBasics) {
  const Subdivision s = make(2, 3, 5, 7);
  EXPECT_TRUE(s.is_rectangle());
  EXPECT_EQ(s.rows(), 5);
  EXPECT_EQ(s.cols(), 4);
  EXPECT_EQ(s.strip_count(), 5);
  for (int st = 0; st < 5; ++st) EXPECT_EQ(s.strip_width(st), 4);
  EXPECT_EQ(s.grid_points().size(), 20u);
  EXPECT_NO_THROW(s.validate());
}

TEST(SubdivisionTest, RectangleStripNodes) {
  const Subdivision s = make(2, 3, 5, 7);
  EXPECT_EQ(s.strip_node(0, 0), (GridPoint{2, 3}));
  EXPECT_EQ(s.strip_node(0, 3), (GridPoint{5, 3}));
  EXPECT_EQ(s.strip_node(4, 0), (GridPoint{2, 7}));
}

TEST(SubdivisionTest, RowTrapezoidTopLonger) {
  // NTAPRW=+1: widths from bottom to top: 1, 3, 5, 7, 9.
  const Subdivision s = make(1, 1, 9, 5, +1);
  EXPECT_TRUE(s.is_row_trapezoid());
  EXPECT_NO_THROW(s.validate());
  EXPECT_EQ(s.strip_width(0), 1);
  EXPECT_EQ(s.strip_width(2), 5);
  EXPECT_EQ(s.strip_width(4), 9);
  EXPECT_EQ(s.strip_node(0, 0), (GridPoint{5, 1}));  // centred point
  EXPECT_EQ(s.strip_node(4, 0), (GridPoint{1, 5}));
  EXPECT_TRUE(s.is_triangle());
}

TEST(SubdivisionTest, RowTrapezoidBottomLonger) {
  const Subdivision s = make(1, 1, 9, 3, -2);
  EXPECT_NO_THROW(s.validate());
  EXPECT_EQ(s.strip_width(0), 9);
  EXPECT_EQ(s.strip_width(1), 5);
  EXPECT_EQ(s.strip_width(2), 1);
  EXPECT_EQ(s.strip_node(1, 0), (GridPoint{3, 2}));
}

TEST(SubdivisionTest, ColTrapezoidRightLonger) {
  // NTAPCM=+1: left side short.
  const Subdivision s = make(1, 1, 5, 9, 0, +1);
  EXPECT_TRUE(s.is_col_trapezoid());
  EXPECT_NO_THROW(s.validate());
  EXPECT_EQ(s.strip_count(), 5);  // strips are columns
  EXPECT_EQ(s.strip_width(0), 1);
  EXPECT_EQ(s.strip_width(4), 9);
  EXPECT_EQ(s.strip_node(0, 0), (GridPoint{1, 5}));
  EXPECT_EQ(s.strip_node(4, 8), (GridPoint{5, 9}));
}

TEST(SubdivisionTest, ColTrapezoidLeftLonger) {
  const Subdivision s = make(1, 1, 3, 9, 0, -2);
  EXPECT_NO_THROW(s.validate());
  EXPECT_EQ(s.strip_width(0), 9);
  EXPECT_EQ(s.strip_width(1), 5);
  EXPECT_EQ(s.strip_width(2), 1);
}

TEST(SubdivisionTest, NonDegenerateTrapezoidIsNotTriangle) {
  const Subdivision s = make(1, 1, 9, 2, +1);  // widths 7, 9
  EXPECT_NO_THROW(s.validate());
  EXPECT_FALSE(s.is_triangle());
}

TEST(SubdivisionTest, Contains) {
  const Subdivision s = make(1, 1, 9, 3, -2);  // widths 9, 5, 1
  EXPECT_TRUE(s.contains(1, 1));
  EXPECT_TRUE(s.contains(9, 1));
  EXPECT_TRUE(s.contains(5, 3));
  EXPECT_FALSE(s.contains(1, 3));   // shrunk away
  EXPECT_FALSE(s.contains(4, 3));
  EXPECT_FALSE(s.contains(0, 1));   // outside the box
  EXPECT_FALSE(s.contains(5, 4));
}

TEST(SubdivisionTest, GridPointCounts) {
  EXPECT_EQ(make(1, 1, 9, 5, +1).grid_points().size(), 1u + 3 + 5 + 7 + 9);
  EXPECT_EQ(make(1, 1, 3, 9, 0, -2).grid_points().size(), 9u + 5 + 1);
}

TEST(SubdivisionTest, ValidateRejectsBadCorners) {
  EXPECT_THROW(make(5, 1, 2, 4).validate(), Error);   // k2 < k1
  EXPECT_THROW(make(1, 5, 4, 2).validate(), Error);   // l2 < l1
  EXPECT_THROW(make(0, 1, 4, 4).validate(), Error);   // zero coordinate
}

TEST(SubdivisionTest, ValidateRejectsBothIndicators) {
  EXPECT_THROW(make(1, 1, 9, 5, 1, 1).validate(), Error);
}

TEST(SubdivisionTest, ValidateRejectsOverShrunkTrapezoid) {
  // widths would go 9, 5, 1, -3.
  EXPECT_THROW(make(1, 1, 9, 4, -2).validate(), Error);
}

TEST(SubdivisionTest, SidePointsRectangle) {
  const Subdivision s = make(1, 1, 3, 4);
  EXPECT_EQ(side_points(s, Side::kParallelLow),
            (std::vector<GridPoint>{{1, 1}, {2, 1}, {3, 1}}));
  EXPECT_EQ(side_points(s, Side::kParallelHigh),
            (std::vector<GridPoint>{{1, 4}, {2, 4}, {3, 4}}));
  EXPECT_EQ(side_points(s, Side::kCrossLow),
            (std::vector<GridPoint>{{1, 1}, {1, 2}, {1, 3}, {1, 4}}));
  EXPECT_EQ(side_points(s, Side::kCrossHigh),
            (std::vector<GridPoint>{{3, 1}, {3, 2}, {3, 3}, {3, 4}}));
}

TEST(SubdivisionTest, SidePointsRowTrapezoidSlant) {
  const Subdivision s = make(1, 1, 9, 3, -2);  // widths 9, 5, 1
  // The cross-low side follows the slant.
  EXPECT_EQ(side_points(s, Side::kCrossLow),
            (std::vector<GridPoint>{{1, 1}, {3, 2}, {5, 3}}));
  EXPECT_EQ(side_points(s, Side::kCrossHigh),
            (std::vector<GridPoint>{{9, 1}, {7, 2}, {5, 3}}));
  EXPECT_EQ(side_points(s, Side::kParallelHigh),
            (std::vector<GridPoint>{{5, 3}}));
}

TEST(SubdivisionTest, SidePointsColTrapezoid) {
  // NTAPCM=+1, k 1..3, l 1..5: columns of 1, 3, 5 nodes.
  const Subdivision s = make(1, 1, 3, 5, 0, +1);
  // Parallel sides are the left/right columns.
  EXPECT_EQ(side_points(s, Side::kParallelLow),
            (std::vector<GridPoint>{{1, 3}}));
  EXPECT_EQ(side_points(s, Side::kParallelHigh),
            (std::vector<GridPoint>{{3, 1}, {3, 2}, {3, 3}, {3, 4}, {3, 5}}));
  // Cross sides walk the slants, one node per column.
  EXPECT_EQ(side_points(s, Side::kCrossLow),
            (std::vector<GridPoint>{{1, 3}, {2, 2}, {3, 1}}));
  EXPECT_EQ(side_points(s, Side::kCrossHigh),
            (std::vector<GridPoint>{{1, 3}, {2, 4}, {3, 5}}));
}

// Property sweep: every admissible (rows, taper) combination keeps strip
// widths positive, symmetric about the centreline, and grid point counts
// consistent.
struct TaperParam {
  int span;   // long-side node count
  int strips;
  int taper;  // |NTAPRW| or |NTAPCM|
};

class TaperSweep : public ::testing::TestWithParam<TaperParam> {};

TEST_P(TaperSweep, RowTrapezoidConsistent) {
  const auto [span, strips, taper] = GetParam();
  const int short_side = span - 2 * taper * (strips - 1);
  if (short_side < 1) GTEST_SKIP() << "inadmissible combination";
  for (int sign : {+1, -1}) {
    const Subdivision s = make(1, 1, span, strips, sign * taper);
    ASSERT_NO_THROW(s.validate());
    size_t total = 0;
    for (int st = 0; st < s.strip_count(); ++st) {
      const int w = s.strip_width(st);
      EXPECT_GE(w, 1);
      int lo, hi;
      s.strip_span(st, lo, hi);
      // Isosceles: the strip is centred on the subdivision's centreline.
      EXPECT_EQ(lo - 1, span - hi);
      total += static_cast<size_t>(w);
    }
    EXPECT_EQ(s.grid_points().size(), total);
    EXPECT_EQ(s.is_triangle(), short_side == 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Tapers, TaperSweep,
    ::testing::Values(TaperParam{9, 5, 1}, TaperParam{9, 3, 2},
                      TaperParam{13, 13, 0}, TaperParam{13, 3, 3},
                      TaperParam{7, 4, 1}, TaperParam{11, 6, 1},
                      TaperParam{21, 6, 2}, TaperParam{15, 8, 1}));

}  // namespace
}  // namespace feio::idlz
