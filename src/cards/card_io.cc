#include "cards/card_io.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/fault.h"

namespace feio::cards {
namespace {

// Whether the field holds an interior blank that blank-as-zero editing will
// turn into a digit: a blank after the first nonblank character. Fields
// where that changes nothing ("12 " and "1 2" both qualify; whether the
// *value* changed is checked by comparing the two parses).
bool has_interior_blank(std::string_view field) {
  size_t first = field.find_first_not_of(' ');
  if (first == std::string_view::npos) return false;
  return field.find(' ', first) != std::string_view::npos;
}

}  // namespace

std::vector<Field> decode(std::string_view card, const Format& format) {
  std::vector<Field> out;
  out.reserve(static_cast<size_t>(format.field_count()));
  const BlankPolicy bp = format.blank_policy();
  size_t col = 0;
  for (const EditDescriptor& d : format.descriptors()) {
    std::string_view field;
    if (col < card.size()) {
      field = card.substr(col, static_cast<size_t>(d.width));
    }
    col += static_cast<size_t>(d.width);
    switch (d.kind) {
      case EditKind::kSkip:
        break;
      case EditKind::kInt:
        out.emplace_back(read_int_field(field, bp));
        break;
      case EditKind::kFixed:
      case EditKind::kExp:
        out.emplace_back(read_real_field(field, d.decimals, bp));
        break;
      case EditKind::kAlpha: {
        std::string text(field);
        text.resize(static_cast<size_t>(d.width), ' ');
        out.emplace_back(std::move(text));
        break;
      }
    }
  }
  return out;
}

std::vector<Field> decode(std::string_view card, const Format& format,
                          DiagSink& sink, const SourceLoc& where) {
  std::vector<Field> out;
  out.reserve(static_cast<size_t>(format.field_count()));
  const BlankPolicy bp = format.blank_policy();
  size_t col = 0;
  for (const EditDescriptor& d : format.descriptors()) {
    std::string_view field;
    if (col < card.size()) {
      field = card.substr(col, static_cast<size_t>(d.width));
    }
    SourceLoc at = where;
    at.col_begin = static_cast<int>(col) + 1;
    at.col_end = static_cast<int>(col) + d.width;
    col += static_cast<size_t>(d.width);
    switch (d.kind) {
      case EditKind::kSkip:
        break;
      case EditKind::kInt:
        try {
          const long v = read_int_field(field, bp);
          if (bp == BlankPolicy::kBlankAsZero && has_interior_blank(field)) {
            try {
              const long bn = read_int_field(field, BlankPolicy::kIgnore);
              if (bn != v) {
                sink.error("E-CARD-005",
                           "interior blank reads as zero digit: '" +
                               std::string(field) + "' is " +
                               std::to_string(v) + " under FORTRAN-66, " +
                               std::to_string(bn) + " with blanks ignored",
                           at);
              }
            } catch (const Error&) {
              // The blanks-ignored reading is itself garbage; the BZ value
              // stands and there is no ambiguity to report.
            }
          }
          out.emplace_back(v);
        } catch (const Error& e) {
          sink.error("E-CARD-001", e.what(), at);
          out.emplace_back(0L);
        }
        break;
      case EditKind::kFixed:
      case EditKind::kExp:
        try {
          const double v = read_real_field(field, d.decimals, bp);
          if (bp == BlankPolicy::kBlankAsZero && has_interior_blank(field)) {
            try {
              const double bn =
                  read_real_field(field, d.decimals, BlankPolicy::kIgnore);
              if (bn != v) {
                sink.error("E-CARD-005",
                           "interior blank reads as zero digit: '" +
                               std::string(field) + "' parses as " +
                               std::to_string(v) + " under FORTRAN-66, " +
                               std::to_string(bn) + " with blanks ignored",
                           at);
              }
            } catch (const Error&) {
            }
          }
          if (!std::isfinite(v)) {
            sink.error("E-CARD-004",
                       "non-finite real field '" + std::string(field) + "'",
                       at);
            out.emplace_back(0.0);
          } else {
            out.emplace_back(v);
          }
        } catch (const Error& e) {
          sink.error("E-CARD-002", e.what(), at);
          out.emplace_back(0.0);
        }
        break;
      case EditKind::kAlpha: {
        std::string text(field);
        text.resize(static_cast<size_t>(d.width), ' ');
        out.emplace_back(std::move(text));
        break;
      }
    }
  }
  return out;
}

std::string encode(const std::vector<Field>& values, const Format& format) {
  FEIO_REQUIRE(static_cast<int>(values.size()) == format.field_count(),
               "value count does not match FORMAT field count");
  std::string card;
  size_t vi = 0;
  for (const EditDescriptor& d : format.descriptors()) {
    switch (d.kind) {
      case EditKind::kSkip:
        card.append(static_cast<size_t>(d.width), ' ');
        break;
      case EditKind::kInt: {
        const Field& f = values[vi++];
        FEIO_REQUIRE(std::holds_alternative<long>(f),
                     "integer FORMAT field needs an integer value");
        card += write_int_field(std::get<long>(f), d.width);
        break;
      }
      case EditKind::kFixed:
      case EditKind::kExp: {
        const Field& f = values[vi++];
        double v = 0.0;
        if (std::holds_alternative<double>(f)) {
          v = std::get<double>(f);
        } else if (std::holds_alternative<long>(f)) {
          v = static_cast<double>(std::get<long>(f));
        } else {
          fail("real FORMAT field needs a numeric value");
        }
        card += d.kind == EditKind::kFixed
                    ? write_fixed_field(v, d.width, d.decimals)
                    : write_exp_field(v, d.width, d.decimals,
                                      format.exp_style());
        break;
      }
      case EditKind::kAlpha: {
        const Field& f = values[vi++];
        FEIO_REQUIRE(std::holds_alternative<std::string>(f),
                     "alpha FORMAT field needs a string value");
        card += write_alpha_field(std::get<std::string>(f), d.width);
        break;
      }
    }
  }
  if (card.size() < kCardWidth) card.resize(kCardWidth, ' ');
  return card;
}

CardReader::CardReader(std::istream& in, std::string deck_name)
    : in_(in), deck_name_(std::move(deck_name)) {}

std::optional<std::string> CardReader::next_card() {
  FEIO_FAULT("card.read");
  std::string line;
  while (std::getline(in_, line)) {
    ++card_number_;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty() && line.front() == '*') continue;  // comment card
    if (line.size() > kCardWidth) line.resize(kCardWidth);
    if (line.size() < kCardWidth) line.resize(kCardWidth, ' ');
    return line;
  }
  return std::nullopt;
}

std::vector<Field> CardReader::read(const Format& format) {
  auto card = next_card();
  FEIO_REQUIRE(card.has_value(), "deck ended while more cards were expected");
  try {
    return decode(*card, format);
  } catch (const Error& e) {
    fail(e.what(), "card " + std::to_string(card_number_));
  }
}

std::optional<std::vector<Field>> CardReader::try_read(const Format& format,
                                                       DiagSink& sink) {
  auto card = next_card();
  if (!card.has_value()) {
    sink.error("E-CARD-003", "deck ended while more cards were expected",
               {deck_name_, card_number_, 0, 0});
    return std::nullopt;
  }
  return decode(*card, format, sink, loc());
}

void CardWriter::write(const std::vector<Field>& values, const Format& format) {
  cards_.push_back(encode(values, format));
}

void CardWriter::write_raw(std::string_view card) {
  std::string image(card.substr(0, kCardWidth));
  image.resize(kCardWidth, ' ');
  cards_.push_back(std::move(image));
}

std::string CardWriter::str() const {
  std::string out;
  for (const std::string& c : cards_) {
    out += c;
    out += '\n';
  }
  return out;
}

long as_int(const Field& f) {
  FEIO_REQUIRE(std::holds_alternative<long>(f), "field is not an integer");
  return std::get<long>(f);
}

double as_real(const Field& f) {
  if (std::holds_alternative<double>(f)) return std::get<double>(f);
  if (std::holds_alternative<long>(f)) {
    return static_cast<double>(std::get<long>(f));
  }
  fail("field is not numeric");
}

const std::string& as_alpha(const Field& f) {
  FEIO_REQUIRE(std::holds_alternative<std::string>(f), "field is not alpha");
  return std::get<std::string>(f);
}

}  // namespace feio::cards
