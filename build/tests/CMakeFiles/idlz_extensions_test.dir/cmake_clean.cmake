file(REMOVE_RECURSE
  "CMakeFiles/idlz_extensions_test.dir/idlz_extensions_test.cc.o"
  "CMakeFiles/idlz_extensions_test.dir/idlz_extensions_test.cc.o.d"
  "idlz_extensions_test"
  "idlz_extensions_test.pdb"
  "idlz_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idlz_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
