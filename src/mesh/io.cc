#include "mesh/io.h"

#include <fstream>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace feio::mesh {
namespace {

void write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path);
  FEIO_REQUIRE(f.good(), "cannot open '" + path + "' for writing");
  f << content;
  FEIO_REQUIRE(f.good(), "failed writing '" + path + "'");
}

// Skips blank lines and '#' comments; returns the next meaningful line.
bool next_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    const std::string_view t = trim(line);
    if (!t.empty() && t[0] != '#') {
      line = std::string(t);
      return true;
    }
  }
  return false;
}

}  // namespace

std::string to_obj(const TriMesh& mesh) {
  std::ostringstream out;
  out << "# feio idealization: " << mesh.num_nodes() << " nodes, "
      << mesh.num_elements() << " elements\n";
  for (const Node& n : mesh.nodes()) {
    out << "v " << fixed(n.pos.x, 6) << " " << fixed(n.pos.y, 6) << " 0\n";
  }
  for (const Element& el : mesh.elements()) {
    out << "f " << el.n[0] + 1 << " " << el.n[1] + 1 << " " << el.n[2] + 1
        << "\n";
  }
  return out.str();
}

void write_obj(const TriMesh& mesh, const std::string& path) {
  write_file(path, to_obj(mesh));
}

std::string to_off(const TriMesh& mesh) {
  std::ostringstream out;
  out << "OFF\n"
      << mesh.num_nodes() << " " << mesh.num_elements() << " 0\n";
  for (const Node& n : mesh.nodes()) {
    out << fixed(n.pos.x, 6) << " " << fixed(n.pos.y, 6) << " 0\n";
  }
  for (const Element& el : mesh.elements()) {
    out << "3 " << el.n[0] << " " << el.n[1] << " " << el.n[2] << "\n";
  }
  return out.str();
}

void write_off(const TriMesh& mesh, const std::string& path) {
  write_file(path, to_off(mesh));
}

TriMesh read_off(std::istream& in) {
  std::string line;
  FEIO_REQUIRE(next_line(in, line), "empty OFF stream");
  FEIO_REQUIRE(starts_with(line, "OFF"), "missing OFF header");

  FEIO_REQUIRE(next_line(in, line), "OFF counts line missing");
  std::istringstream counts(line);
  long nv = 0;
  long nf = 0;
  long ne = 0;
  counts >> nv >> nf >> ne;
  FEIO_REQUIRE(counts && nv >= 0 && nf >= 0, "bad OFF counts line");

  TriMesh mesh;
  for (long i = 0; i < nv; ++i) {
    FEIO_REQUIRE(next_line(in, line), "OFF vertex list truncated");
    std::istringstream v(line);
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;
    v >> x >> y >> z;
    FEIO_REQUIRE(static_cast<bool>(v), "bad OFF vertex line: " + line);
    mesh.add_node({x, y});
  }
  for (long f = 0; f < nf; ++f) {
    FEIO_REQUIRE(next_line(in, line), "OFF face list truncated");
    std::istringstream face(line);
    int arity = 0;
    face >> arity;
    FEIO_REQUIRE(arity == 3, "only triangular OFF faces are supported");
    int a = 0;
    int b = 0;
    int c = 0;
    face >> a >> b >> c;
    FEIO_REQUIRE(static_cast<bool>(face), "bad OFF face line: " + line);
    FEIO_REQUIRE(a >= 0 && a < mesh.num_nodes() && b >= 0 &&
                     b < mesh.num_nodes() && c >= 0 && c < mesh.num_nodes(),
                 "OFF face references a missing vertex");
    mesh.add_element(a, b, c);
  }
  mesh.classify_boundary();
  return mesh;
}

TriMesh read_off_string(const std::string& text) {
  std::istringstream in(text);
  return read_off(in);
}

}  // namespace feio::mesh
