# Empty compiler generated dependencies file for glass_joint.
# This may be replaced when dependencies are built.
