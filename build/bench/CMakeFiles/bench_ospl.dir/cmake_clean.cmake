file(REMOVE_RECURSE
  "CMakeFiles/bench_ospl.dir/bench_ospl.cc.o"
  "CMakeFiles/bench_ospl.dir/bench_ospl.cc.o.d"
  "bench_ospl"
  "bench_ospl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ospl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
