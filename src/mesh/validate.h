// Mesh sanity checks run after idealization and before analysis/plotting.
#pragma once

#include <string>
#include <vector>

#include "mesh/tri_mesh.h"
#include "util/diag.h"

namespace feio::mesh {

// Validation findings as structured diagnostics (codes E-MESH-* for fatal
// problems, W-MESH-* for quality concerns) so they merge into a run's
// DiagSink alongside the deck readers' reports.
struct ValidationReport {
  std::vector<Diag> diags;

  bool ok() const;  // no error-severity findings

  // Legacy string views of the findings (messages only, codes stripped).
  std::vector<std::string> errors() const;
  std::vector<std::string> warnings() const;
  // All findings rendered one per line ("error E-MESH-003: ...").
  std::vector<std::string> to_strings() const;

  // Appends every finding to `sink`.
  void merge_into(DiagSink& sink) const;
};

// Checks: node indices in range, no repeated nodes in an element, no
// zero/negative-area elements (after orientation), no duplicate elements,
// no non-manifold edges (>2 incident elements), boundary flags consistent
// with topology, mesh connected (single component) — the last is a warning
// because multi-part idealizations are legal in IDLZ.
ValidationReport validate(const TriMesh& mesh);

}  // namespace feio::mesh
