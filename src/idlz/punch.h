// Punched-card output (NOPNCH=1): the geometric and bookkeeping data cards
// IDLZ produced for the downstream finite element program, in the FORMAT
// the user supplies on the two type-7 cards.
//
// A nodal card carries the node's X and Y coordinates, the integer boundary
// flag (0/1/2, matching OSPL's N(I)), and the 1-based node number. An
// element card carries the element's three 1-based node numbers and the
// 1-based element number. The defaults below are the FORMATs Appendix B
// lists as compatible with the analysis program of the paper's Reference 1.
#pragma once

#include <string>

#include "mesh/tri_mesh.h"
#include "util/diag.h"

namespace feio::idlz {

inline constexpr const char* kDefaultNodalFormat = "(2F9.5,51X,I3,5X,I3)";
inline constexpr const char* kDefaultElementFormat = "(3I5,62X,I3)";

// One card per node: fields (X, Y, boundary, number) distributed over the
// FORMAT's value-bearing descriptors in order. The FORMAT must have exactly
// 4 value fields: 2 real-capable then 2 integer-capable.
std::string punch_nodal_cards(const mesh::TriMesh& mesh,
                              const std::string& format = kDefaultNodalFormat);

// One card per element: (n1, n2, n3, element number); 4 integer fields.
std::string punch_element_cards(
    const mesh::TriMesh& mesh,
    const std::string& format = kDefaultElementFormat);

// Diagnosing variants: a value that does not fit its FORMAT field is
// reported as E-PUNCH-001 — one record per overflowing field, carrying the
// first offending value and the total count — instead of silently punching
// an asterisk-filled (and therefore unreadable) card. `format_loc` should
// point at the type-7 card that supplied the FORMAT so the report leads the
// analyst to the card to fix. The overflowing fields are still punched as
// asterisks (the FORTRAN convention), but the error in the sink marks the
// deck's punched output as unusable.
std::string punch_nodal_cards(const mesh::TriMesh& mesh,
                              const std::string& format, DiagSink& sink,
                              const SourceLoc& format_loc = {});
std::string punch_element_cards(const mesh::TriMesh& mesh,
                                const std::string& format, DiagSink& sink,
                                const SourceLoc& format_loc = {});

}  // namespace feio::idlz
