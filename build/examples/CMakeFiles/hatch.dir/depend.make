# Empty dependencies file for hatch.
# This may be replaced when dependencies are built.
