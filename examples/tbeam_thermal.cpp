// The T-beam under a thermal radiation pulse (Figure 14).
//
// A half Tee cross-section is idealized by IDLZ, heated on its exposed
// flange face by a one-second radiation pulse, integrated through time
// with the transient conduction substrate, and the temperature fields at
// t = 2 s and t = 3 s are plotted by OSPL as the paper's Figure 14a/14b.
//
// Outputs: out/fig14_t2.svg, out/fig14_t3.svg
#include <cstdio>

#include "ospl/ospl.h"
#include "plot/svg.h"
#include "scenarios/scenarios.h"

using namespace feio;

int main() {
  const scenarios::AnalysisOutput out = scenarios::fig14_analysis();
  std::printf("T-beam: %d nodes, %d elements\n", out.idlz.mesh.num_nodes(),
              out.idlz.mesh.num_elements());

  const char* files[] = {"out/fig14_t2.svg", "out/fig14_t3.svg"};
  for (size_t i = 0; i < out.fields.size(); ++i) {
    ospl::OsplCase oc;
    oc.mesh = out.idlz.mesh;
    oc.values = out.fields[i].values;
    oc.title1 = "TEMPERATURE DISTRIBUTION IN T-BEAM EXPOSED TO A THERMAL "
                "RADIATION PULSE";
    oc.title2 = out.fields[i].name;
    oc.delta = out.fields[i].suggested_delta;
    const ospl::OsplResult plot = ospl::run(oc);
    plot::write_svg(plot.plot, files[i]);
    std::printf("%s: %.1f .. %.1f deg, interval %.0f, %zu isogram segments\n",
                out.fields[i].name.c_str(), plot.vmin, plot.vmax, plot.delta,
                plot.segments.size());
  }
  std::printf("wrote out/fig14_t2.svg, out/fig14_t3.svg\n");

  // Extension: the temperatures exist to drive a thermal-stress analysis
  // (the role of the paper's Reference 3); plot the resulting effective
  // thermal stress at t = 2 s.
  const scenarios::AnalysisOutput stress =
      scenarios::fig14_thermal_stress_analysis();
  ospl::OsplCase oc;
  oc.mesh = stress.idlz.mesh;
  oc.values = stress.fields[0].values;
  oc.title1 = stress.title;
  const ospl::OsplResult splot = ospl::run(oc);
  plot::write_svg(splot.plot, "out/fig14_thermal_stress.svg");
  std::printf("thermal stress at t = 2 s: %.0f .. %.0f psi, interval %.0f "
              "-> out/fig14_thermal_stress.svg\n",
              splot.vmin, splot.vmax, splot.delta);
  return 0;
}
