#include "geom/polygon.h"

#include <algorithm>

namespace feio::geom {

double polygon_area(const std::vector<Vec2>& poly) {
  double twice = 0.0;
  const std::size_t n = poly.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 a = poly[i];
    const Vec2 b = poly[(i + 1) % n];
    twice += cross(a, b);
  }
  return twice / 2.0;
}

bool point_in_polygon(Vec2 p, const std::vector<Vec2>& poly) {
  bool inside = false;
  const std::size_t n = poly.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const Vec2 a = poly[j];
    const Vec2 b = poly[i];
    const bool crosses = (b.y > p.y) != (a.y > p.y);
    if (crosses) {
      const double x_at = b.x + (p.y - b.y) * (a.x - b.x) / (a.y - b.y);
      if (p.x < x_at) inside = !inside;
    }
  }
  return inside;
}

void BBox::expand(Vec2 p) {
  lo.x = std::min(lo.x, p.x);
  lo.y = std::min(lo.y, p.y);
  hi.x = std::max(hi.x, p.x);
  hi.y = std::max(hi.y, p.y);
}

void BBox::expand(const BBox& other) {
  if (!other.valid()) return;
  expand(other.lo);
  expand(other.hi);
}

BBox BBox::inflated(double margin) const {
  BBox out = *this;
  out.lo -= Vec2{margin, margin};
  out.hi += Vec2{margin, margin};
  return out;
}

bool BBox::contains(Vec2 p) const {
  return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
}

BBox bbox_of(const std::vector<Vec2>& pts) {
  BBox box;
  for (Vec2 p : pts) box.expand(p);
  return box;
}

}  // namespace feio::geom
