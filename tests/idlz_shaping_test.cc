#include <cmath>

#include <gtest/gtest.h>

#include "idlz/assembler.h"
#include "idlz/shaping.h"
#include "mesh/validate.h"
#include "util/error.h"

namespace feio::idlz {
namespace {

using geom::Vec2;

Subdivision make(int id, int k1, int l1, int k2, int l2, int ntaprw = 0,
                 int ntapcm = 0) {
  Subdivision s;
  s.id = id;
  s.k1 = k1;
  s.l1 = l1;
  s.k2 = k2;
  s.l2 = l2;
  s.ntaprw = ntaprw;
  s.ntapcm = ntapcm;
  return s;
}

ShapeLine line(int k1, int l1, int k2, int l2, Vec2 p1, Vec2 p2,
               double radius = 0.0) {
  return ShapeLine{k1, l1, k2, l2, p1, p2, radius};
}

TEST(ShapeLineRunTest, HorizontalRun) {
  const auto run = shape_line_run(line(2, 3, 6, 3, {}, {}));
  ASSERT_EQ(run.size(), 5u);
  EXPECT_EQ(run.front(), (GridPoint{2, 3}));
  EXPECT_EQ(run[2], (GridPoint{4, 3}));
  EXPECT_EQ(run.back(), (GridPoint{6, 3}));
}

TEST(ShapeLineRunTest, ReversedRun) {
  const auto run = shape_line_run(line(6, 3, 2, 3, {}, {}));
  EXPECT_EQ(run.front(), (GridPoint{6, 3}));
  EXPECT_EQ(run.back(), (GridPoint{2, 3}));
}

TEST(ShapeLineRunTest, SlantRunUsesGcd) {
  // From (1,1) to (7,4): gcd(6,3)=3 intervals stepping (2,1) — the slant of
  // an NTAPRW=2 trapezoid.
  const auto run = shape_line_run(line(1, 1, 7, 4, {}, {}));
  ASSERT_EQ(run.size(), 4u);
  EXPECT_EQ(run[1], (GridPoint{3, 2}));
  EXPECT_EQ(run[2], (GridPoint{5, 3}));
}

TEST(ShapeLineRunTest, DegeneratePointRun) {
  const auto run = shape_line_run(line(4, 4, 4, 4, {}, {}));
  ASSERT_EQ(run.size(), 1u);
  EXPECT_EQ(run[0], (GridPoint{4, 4}));
}

TEST(ShapingTest, RectangleParallelPair) {
  Assembly a = assemble({make(1, 1, 1, 3, 3)});
  const ShapingReport rep =
      shape({make(1, 1, 1, 3, 3)},
            {{1,
              {line(1, 1, 3, 1, {0, 0}, {4, 0}),
               line(1, 3, 3, 3, {0, 2}, {4, 2})}}},
            a);
  EXPECT_EQ(rep.nodes_from_cards, 6);
  EXPECT_EQ(rep.nodes_interpolated, 3);
  // Middle row interpolates halfway.
  EXPECT_EQ(a.mesh.pos(a.node_at.at(GridPoint{2, 2})), (Vec2{2, 1}));
  EXPECT_TRUE(mesh::validate(a.mesh).ok());
}

TEST(ShapingTest, RectangleCrossPair) {
  const std::vector<Subdivision> subs{make(1, 1, 1, 3, 3)};
  Assembly a = assemble(subs);
  shape(subs,
        {{1,
          {line(1, 1, 1, 3, {0, 0}, {0, 2}),
           line(3, 1, 3, 3, {6, 0}, {6, 2})}}},
        a);
  // Rows are straight between the located side nodes.
  EXPECT_EQ(a.mesh.pos(a.node_at.at(GridPoint{2, 1})), (Vec2{3, 0}));
  EXPECT_EQ(a.mesh.pos(a.node_at.at(GridPoint{2, 2})), (Vec2{3, 1}));
}

TEST(ShapingTest, ArcPlacesNodesAtEqualAngles) {
  const std::vector<Subdivision> subs{make(1, 1, 1, 3, 3)};
  Assembly a = assemble(subs);
  // Left side is a quarter arc of radius 2 about the origin.
  shape(subs,
        {{1,
          {line(1, 1, 1, 3, {2, 0}, {0, 2}, 2.0),
           line(3, 1, 3, 3, {4, 0}, {0, 4})}}},
        a);
  const Vec2 mid = a.mesh.pos(a.node_at.at(GridPoint{1, 2}));
  EXPECT_NEAR(mid.x, 2.0 * std::cos(M_PI / 4), 1e-12);
  EXPECT_NEAR(mid.y, 2.0 * std::sin(M_PI / 4), 1e-12);
}

TEST(ShapingTest, TrapezoidParallelInterpolation) {
  // NTAPRW=-2: widths 9, 5, 1. Shape bottom onto [0,8], apex at (4,4).
  const std::vector<Subdivision> subs{make(1, 1, 1, 9, 3, -2)};
  Assembly a = assemble(subs);
  shape(subs,
        {{1,
          {line(1, 1, 9, 1, {0, 0}, {8, 0}),
           line(5, 3, 5, 3, {4, 4}, {4, 4})}}},
        a);
  // The middle row (5 nodes) spans the midline between base and apex.
  const Vec2 left = a.mesh.pos(a.node_at.at(GridPoint{3, 2}));
  const Vec2 right = a.mesh.pos(a.node_at.at(GridPoint{7, 2}));
  EXPECT_NEAR(left.y, 2.0, 1e-12);
  EXPECT_NEAR(right.y, 2.0, 1e-12);
  EXPECT_NEAR(left.x, 2.0, 1e-12);
  EXPECT_NEAR(right.x, 6.0, 1e-12);
}

TEST(ShapingTest, NeighborLocatedSideCountsAsLocated) {
  // Second subdivision gives only its own top row; its bottom row was
  // located while shaping the first (Hint 6).
  const std::vector<Subdivision> subs{make(1, 1, 1, 3, 3), make(2, 1, 3, 3, 5)};
  Assembly a = assemble(subs);
  EXPECT_NO_THROW(shape(subs,
                        {{1,
                          {line(1, 1, 3, 1, {0, 0}, {4, 0}),
                           line(1, 3, 3, 3, {0, 2}, {4, 2})}},
                         {2, {line(1, 5, 3, 5, {0, 5}, {4, 5})}}},
                        a));
  EXPECT_EQ(a.mesh.pos(a.node_at.at(GridPoint{2, 4})), (Vec2{2, 3.5}));
}

TEST(ShapingTest, LocatedNodesAreNeverMoved) {
  // The shared row keeps the coordinates given by the first subdivision
  // even though the second interpolates across it.
  const std::vector<Subdivision> subs{make(1, 1, 1, 3, 3), make(2, 1, 3, 3, 5)};
  Assembly a = assemble(subs);
  shape(subs,
        {{1,
          {line(1, 1, 3, 1, {0, 0}, {4, 0}),
           line(1, 3, 3, 3, {0, 2}, {4, 2})}},
         {2, {line(1, 5, 3, 5, {0, 8}, {4, 8})}}},
        a);
  EXPECT_EQ(a.mesh.pos(a.node_at.at(GridPoint{2, 3})), (Vec2{2, 2}));
}

TEST(ShapingTest, MissingOppositePairThrows) {
  const std::vector<Subdivision> subs{make(1, 1, 1, 3, 3)};
  Assembly a = assemble(subs);
  // Only the bottom side given: no complete opposite pair.
  EXPECT_THROW(
      shape(subs, {{1, {line(1, 1, 3, 1, {0, 0}, {4, 0})}}}, a),
      Error);
}

TEST(ShapingTest, AdjacentSidesDoNotFormAPair) {
  const std::vector<Subdivision> subs{make(1, 1, 1, 3, 3)};
  Assembly a = assemble(subs);
  EXPECT_THROW(shape(subs,
                     {{1,
                       {line(1, 1, 3, 1, {0, 0}, {4, 0}),
                        line(1, 1, 1, 3, {0, 0}, {0, 2})}}},
               a),
               Error);
}

TEST(ShapingTest, RunOutsideSubdivisionThrows) {
  const std::vector<Subdivision> subs{make(1, 1, 1, 3, 3)};
  Assembly a = assemble(subs);
  EXPECT_THROW(
      shape(subs, {{1, {line(1, 1, 5, 1, {0, 0}, {4, 0})}}}, a),
      Error);
}

TEST(ShapingTest, UnknownSubdivisionIdThrows) {
  const std::vector<Subdivision> subs{make(1, 1, 1, 3, 3)};
  Assembly a = assemble(subs);
  EXPECT_THROW(shape(subs, {{7, {line(1, 1, 3, 1, {0, 0}, {4, 0})}}}, a),
               Error);
}

TEST(ShapingTest, DuplicateSpecThrows) {
  const std::vector<Subdivision> subs{make(1, 1, 1, 3, 3)};
  Assembly a = assemble(subs);
  EXPECT_THROW(shape(subs,
                     {{1, {line(1, 1, 3, 1, {0, 0}, {4, 0})}},
                      {1, {line(1, 3, 3, 3, {0, 2}, {4, 2})}}},
                     a),
               Error);
}

TEST(ShapingTest, PreferOwnCardsWhenBothPairsLocated) {
  // All four sides located by own cards; the parallel (bottom/top) pair has
  // more card hits, so interpolation follows it and the arc sides survive.
  const std::vector<Subdivision> subs{make(1, 1, 1, 5, 3)};
  Assembly a = assemble(subs);
  shape(subs,
        {{1,
          {line(1, 1, 5, 1, {0, 0}, {8, 0}),
           line(1, 3, 5, 3, {0, 4}, {8, 4}),
           line(1, 1, 1, 3, {0, 0}, {0, 4}, 12.0),
           line(5, 1, 5, 3, {8, 0}, {8, 4}, 12.0)}}},
        a);
  // Side midpoints bulge off the straight line (the arc was honoured).
  const Vec2 lm = a.mesh.pos(a.node_at.at(GridPoint{1, 2}));
  EXPECT_GT(std::abs(lm.x - 0.0), 0.05);
}

TEST(ShapingTest, UnequalNodeSpacingPropagatesInward) {
  // Bottom row crowded toward the left via two line segments with
  // different spacing (Hint 5); the crowding shows up in interior rows.
  const std::vector<Subdivision> subs{make(1, 1, 1, 5, 3)};
  Assembly a = assemble(subs);
  shape(subs,
        {{1,
          {line(1, 1, 3, 1, {0, 0}, {1, 0}),      // dense: spacing 0.5
           line(3, 1, 5, 1, {1, 0}, {8, 0}),      // sparse: spacing 3.5
           line(1, 3, 3, 3, {0, 4}, {1, 4}),
           line(3, 3, 5, 3, {1, 4}, {8, 4})}}},
        a);
  const Vec2 mid_row_second = a.mesh.pos(a.node_at.at(GridPoint{2, 2}));
  EXPECT_NEAR(mid_row_second.x, 0.5, 1e-12);
  EXPECT_NEAR(mid_row_second.y, 2.0, 1e-12);
}

TEST(ShapingTest, ReportCountsCoverAllNodes) {
  const std::vector<Subdivision> subs{make(1, 1, 1, 4, 4)};
  Assembly a = assemble(subs);
  const ShapingReport rep = shape(
      subs,
      {{1,
        {line(1, 1, 4, 1, {0, 0}, {3, 0}), line(1, 4, 4, 4, {0, 3}, {3, 3})}}},
      a);
  EXPECT_EQ(rep.nodes_from_cards + rep.nodes_interpolated, 16);
}

TEST(ShapingTest, TriangleSubdivisionPointSide) {
  // General Restriction 4: the point of a triangular subdivision is
  // located as if it were a line (degenerate card).
  const std::vector<Subdivision> subs{make(1, 1, 1, 5, 9, 0, +1)};
  Assembly a = assemble(subs);
  EXPECT_NO_THROW(shape(subs,
                        {{1,
                          {line(1, 5, 1, 5, {0, 4}, {0, 4}),
                           line(5, 1, 5, 9, {4, 0}, {4, 8})}}},
                        a));
  EXPECT_EQ(a.mesh.pos(a.node_at.at(GridPoint{1, 5})), (Vec2{0, 4}));
  EXPECT_TRUE(mesh::validate(a.mesh).ok());
}

TEST(ShapingTest, ArcRespectsLimitOverride) {
  const std::vector<Subdivision> subs{make(1, 1, 1, 3, 3)};
  Assembly a = assemble(subs);
  Limits relaxed = Limits::paper();
  relaxed.max_arc_subtended_deg = 180.0;
  // 120-degree arc: rejected under paper limits, accepted when relaxed.
  const std::vector<ShapingSpec> specs{
      {1,
       {line(1, 1, 1, 3, {1, 0}, {-0.5, std::sqrt(3.0) / 2}, 1.0),
        line(3, 1, 3, 3, {4, 0}, {-2, std::sqrt(3.0) * 2}, 4.0)}}};
  {
    Assembly b = assemble(subs);
    EXPECT_THROW(shape(subs, specs, b), Error);
  }
  EXPECT_NO_THROW(shape(subs, specs, a, relaxed));
}

}  // namespace
}  // namespace feio::idlz
