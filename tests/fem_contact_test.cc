// Unilateral contact (active set) and thermal-strain loading.
#include <cmath>

#include <gtest/gtest.h>

#include "fem/contact.h"
#include "fem/solver.h"
#include "fem/stress.h"
#include "util/error.h"

namespace feio::fem {
namespace {

using geom::Vec2;

mesh::TriMesh beam(int nx, double length, double height) {
  mesh::TriMesh m;
  for (int j = 0; j <= 1; ++j) {
    for (int i = 0; i <= nx; ++i) {
      m.add_node({length * i / nx, height * j});
    }
  }
  auto id = [nx](int i, int j) { return j * (nx + 1) + i; };
  for (int i = 0; i < nx; ++i) {
    m.add_element(id(i, 0), id(i + 1, 0), id(i + 1, 1));
    m.add_element(id(i, 0), id(i + 1, 1), id(i, 1));
  }
  return m;
}

// ---- Contact ----------------------------------------------------------------

TEST(ContactTest, SeesawLiftsOffUnloadedEnd) {
  // A beam pinned at mid-span, pushed down at the right end, with
  // candidate supports under both ends: the left support must release.
  const int nx = 8;
  const mesh::TriMesh m = beam(nx, 8.0, 1.0);
  auto id = [nx](int i, int j) { return j * (nx + 1) + i; };

  StaticProblem prob(m, Analysis::kPlaneStress);
  prob.set_material(Material::isotropic(1.0e6, 0.3));
  prob.fix(id(nx / 2, 0), true, true);  // pivot
  prob.point_load(id(nx, 1), {0.0, -100.0});

  const std::vector<ContactSupport> supports{{id(0, 0), 0.0},
                                             {id(nx, 0), 0.0}};
  const ContactResult r = solve_with_contact(prob, supports);
  ASSERT_TRUE(r.converged);
  EXPECT_FALSE(r.active[0]);  // left end lifts off
  EXPECT_TRUE(r.active[1]);   // right end bears
  EXPECT_GT(r.reaction[1], 0.0);
  EXPECT_DOUBLE_EQ(r.reaction[0], 0.0);
  // The released end moved up, the bearing end sits on its seat.
  EXPECT_GT(r.solution.at(id(0, 0)).y, 0.0);
  EXPECT_NEAR(r.solution.at(id(nx, 0)).y, 0.0, 1e-12);
}

TEST(ContactTest, AllSupportsBearUnderUniformLoad) {
  const int nx = 8;
  const mesh::TriMesh m = beam(nx, 8.0, 1.0);
  auto id = [nx](int i, int j) { return j * (nx + 1) + i; };
  StaticProblem prob(m, Analysis::kPlaneStress);
  prob.set_material(Material::isotropic(1.0e6, 0.3));
  prob.fix(id(0, 0), true, false);  // lateral restraint only
  double total = 0.0;
  for (int i = 0; i <= nx; ++i) {
    prob.point_load(id(i, 1), {0.0, -10.0});
    total += 10.0;
  }
  std::vector<ContactSupport> supports;
  for (int i = 0; i <= nx; ++i) supports.push_back({id(i, 0), 0.0});
  const ContactResult r = solve_with_contact(prob, supports);
  ASSERT_TRUE(r.converged);
  double reaction_sum = 0.0;
  for (size_t s = 0; s < supports.size(); ++s) {
    EXPECT_TRUE(r.active[s]);
    EXPECT_GE(r.reaction[s], 0.0);
    reaction_sum += r.reaction[s];
  }
  EXPECT_NEAR(reaction_sum, total, 1e-6 * total);  // equilibrium
}

TEST(ContactTest, ComplementarityHolds) {
  const int nx = 10;
  const mesh::TriMesh m = beam(nx, 10.0, 1.0);
  auto id = [nx](int i, int j) { return j * (nx + 1) + i; };
  StaticProblem prob(m, Analysis::kPlaneStress);
  prob.set_material(Material::isotropic(1.0e6, 0.3));
  prob.fix(id(3, 0), true, true);
  prob.point_load(id(nx, 1), {0.0, -50.0});
  prob.point_load(id(0, 1), {0.0, 20.0});  // uplift at the left

  std::vector<ContactSupport> supports;
  for (int i : {0, 5, nx}) supports.push_back({id(i, 0), 0.0});
  const ContactResult r = solve_with_contact(prob, supports);
  ASSERT_TRUE(r.converged);
  for (size_t s = 0; s < supports.size(); ++s) {
    const double uy = r.solution.at(supports[s].node).y;
    if (r.active[s]) {
      EXPECT_NEAR(uy, 0.0, 1e-12);       // on the seat
      EXPECT_GE(r.reaction[s], -1e-9);   // pushing only
    } else {
      EXPECT_GE(uy, -1e-12);             // no penetration
      EXPECT_DOUBLE_EQ(r.reaction[s], 0.0);
    }
  }
}

TEST(ContactTest, GapDelaysEngagement) {
  // One support with a gap: under a small load the node does not reach the
  // seat; under a large load it engages at u_y = -gap.
  const int nx = 6;
  const mesh::TriMesh m = beam(nx, 6.0, 1.0);
  auto id = [nx](int i, int j) { return j * (nx + 1) + i; };

  auto run_case = [&](double load) {
    StaticProblem prob(m, Analysis::kPlaneStress);
    prob.set_material(Material::isotropic(1.0e5, 0.3));
    prob.fix(id(0, 0), true, true);
    prob.fix(id(0, 1), true, false);
    prob.point_load(id(nx, 1), {0.0, -load});
    const std::vector<ContactSupport> supports{{id(nx, 0), 0.01}};
    return solve_with_contact(prob, supports);
  };
  const ContactResult light = run_case(1.0);
  ASSERT_TRUE(light.converged);
  EXPECT_FALSE(light.active[0]);
  EXPECT_GT(light.solution.at(id(nx, 0)).y, -0.01);

  const ContactResult heavy = run_case(500.0);
  ASSERT_TRUE(heavy.converged);
  EXPECT_TRUE(heavy.active[0]);
  EXPECT_NEAR(heavy.solution.at(id(nx, 0)).y, -0.01, 1e-12);
  EXPECT_GT(heavy.reaction[0], 0.0);
}

TEST(ContactTest, MatchesBilateralWhenAllBear) {
  // When every support stays engaged the contact solution equals the
  // plain bilateral solve.
  const int nx = 4;
  const mesh::TriMesh m = beam(nx, 4.0, 1.0);
  auto id = [nx](int i, int j) { return j * (nx + 1) + i; };
  StaticProblem prob(m, Analysis::kPlaneStress);
  prob.set_material(Material::isotropic(1.0e6, 0.3));
  prob.fix(id(0, 0), true, false);
  for (int i = 0; i <= nx; ++i) prob.point_load(id(i, 1), {0.0, -5.0});

  std::vector<ContactSupport> supports;
  for (int i = 0; i <= nx; ++i) supports.push_back({id(i, 0), 0.0});
  const ContactResult contact = solve_with_contact(prob, supports);

  StaticProblem bilateral = prob;
  for (int i = 0; i <= nx; ++i) bilateral.fix(id(i, 0), false, true);
  const StaticSolution plain = solve(bilateral);
  for (int n = 0; n < m.num_nodes(); ++n) {
    EXPECT_NEAR(contact.solution.at(n).x, plain.at(n).x, 1e-10);
    EXPECT_NEAR(contact.solution.at(n).y, plain.at(n).y, 1e-10);
  }
}

TEST(ContactTest, NoSupportsThrows) {
  const mesh::TriMesh m = beam(2, 2.0, 1.0);
  StaticProblem prob(m, Analysis::kPlaneStress);
  EXPECT_THROW(solve_with_contact(prob, {}), Error);
}

// ---- Thermal-strain loading ---------------------------------------------------

TEST(ThermalStressTest, FreeExpansionIsStressFree) {
  const int nx = 4;
  const mesh::TriMesh m = beam(nx, 4.0, 1.0);
  auto id = [nx](int i, int j) { return j * (nx + 1) + i; };
  StaticProblem prob(m, Analysis::kPlaneStress);
  prob.set_material(Material::isotropic(1.0e6, 0.3));
  prob.fix(id(0, 0), true, true);
  prob.fix(id(0, 1), true, false);
  const double alpha = 1e-5;
  const double dt = 100.0;
  prob.set_temperature_load(
      std::vector<double>(static_cast<size_t>(m.num_nodes()), 70.0 + dt),
      alpha, 70.0);
  const StaticSolution sol = solve(prob);
  // Uniform expansion: u_x = alpha*dT*x; stress ~ 0.
  EXPECT_NEAR(sol.at(id(nx, 0)).x, alpha * dt * 4.0, 1e-9);
  for (const Stress& s : element_stresses(prob, sol)) {
    EXPECT_NEAR(s.s11, 0.0, 1e-6);
    EXPECT_NEAR(s.s22, 0.0, 1e-6);
    EXPECT_NEAR(s.s12, 0.0, 1e-6);
  }
}

TEST(ThermalStressTest, ConstrainedBarCompresses) {
  // Bar fixed at both ends, heated: sigma_x = -E * alpha * dT (nu = 0).
  const int nx = 6;
  const mesh::TriMesh m = beam(nx, 6.0, 1.0);
  auto id = [nx](int i, int j) { return j * (nx + 1) + i; };
  const double e_mod = 2.0e6;
  const double alpha = 1.2e-5;
  const double dt = 50.0;
  StaticProblem prob(m, Analysis::kPlaneStress);
  prob.set_material(Material::isotropic(e_mod, 0.0));
  for (int j = 0; j <= 1; ++j) {
    prob.fix(id(0, j), true, j == 0);
    prob.fix(id(nx, j), true, false);
  }
  prob.set_temperature_load(
      std::vector<double>(static_cast<size_t>(m.num_nodes()), dt), alpha,
      0.0);
  const StaticSolution sol = solve(prob);
  for (const Stress& s : element_stresses(prob, sol)) {
    EXPECT_NEAR(s.s11, -e_mod * alpha * dt, 1e-6 * e_mod * alpha * dt);
  }
}

TEST(ThermalStressTest, GradientBendsFreeBeam) {
  // Hot top / cold bottom on a free beam: it arches (top expands) and the
  // axial stress stays small compared to the fully-constrained value.
  const int nx = 20;
  const mesh::TriMesh m = beam(nx, 10.0, 1.0);
  auto id = [nx](int i, int j) { return j * (nx + 1) + i; };
  StaticProblem prob(m, Analysis::kPlaneStress);
  prob.set_material(Material::isotropic(1.0e6, 0.0));
  prob.fix(id(0, 0), true, true);
  prob.fix(id(nx, 0), false, true);
  std::vector<double> temps(static_cast<size_t>(m.num_nodes()), 0.0);
  for (int i = 0; i <= nx; ++i) {
    temps[static_cast<size_t>(id(i, 1))] = 100.0;  // top hot
  }
  prob.set_temperature_load(temps, 1e-5, 0.0);
  const StaticSolution sol = solve(prob);
  // Mid-span rises.
  EXPECT_GT(sol.at(id(nx / 2, 0)).y, 1e-5);
  // Ends rotate outward at the top.
  EXPECT_GT(sol.at(id(nx, 1)).x - sol.at(id(nx, 0)).x, 0.0);
}

TEST(ThermalStressTest, TemperatureCountValidated) {
  const mesh::TriMesh m = beam(2, 2.0, 1.0);
  StaticProblem prob(m, Analysis::kPlaneStress);
  EXPECT_THROW(prob.set_temperature_load({1.0, 2.0}, 1e-5, 0.0), Error);
}

TEST(ThermalStressTest, AxisymmetricFreeRingExpansion) {
  // A free ring heated uniformly grows radially by alpha*dT*r, stress-free.
  mesh::TriMesh m;
  const int nr = 4;
  for (int j = 0; j <= 1; ++j) {
    for (int i = 0; i <= nr; ++i) {
      m.add_node({2.0 + 0.25 * i, 0.2 * j});
    }
  }
  auto id = [nr](int i, int j) { return j * (nr + 1) + i; };
  for (int i = 0; i < nr; ++i) {
    m.add_element(id(i, 0), id(i + 1, 0), id(i + 1, 1));
    m.add_element(id(i, 0), id(i + 1, 1), id(i, 1));
  }
  StaticProblem prob(m, Analysis::kAxisymmetric);
  prob.set_material(Material::isotropic(1.0e6, 0.3));
  for (int i = 0; i <= nr; ++i) prob.fix(id(i, 0), false, true);
  const double alpha = 1e-5;
  const double dt = 200.0;
  prob.set_temperature_load(
      std::vector<double>(static_cast<size_t>(m.num_nodes()), dt), alpha,
      0.0);
  const StaticSolution sol = solve(prob);
  for (int i = 0; i <= nr; ++i) {
    const double r = m.pos(id(i, 1)).x;
    EXPECT_NEAR(sol.at(id(i, 1)).x, alpha * dt * r, 1e-4 * alpha * dt * r);
  }
  for (const Stress& s : element_stresses(prob, sol)) {
    EXPECT_NEAR(s.von_mises(), 0.0, 1.0);  // ~0 vs E*alpha*dT = 2000
  }
}

}  // namespace
}  // namespace feio::fem
