#!/usr/bin/env python3
"""Validate feio's machine-readable output in CI.

usage:
  check_report.py report FILE [--kind KIND]   validate a feio.report/1 doc
  check_report.py trace FILE                  validate a Chrome trace JSON

`report` checks the shared envelope (schema/kind/tool_version/generated_by)
plus the kind-specific required keys. `trace` checks the trace-event shape
chrome://tracing and Perfetto load: a traceEvents array of B/E events with
balanced begin/end per thread. Exits non-zero with a message on the first
violation. Stdlib only.
"""
import json
import sys

REPORT_SCHEMA = "feio.report/1"
REQUIRED_KEYS = {
    "diag": ["ok", "errors", "warnings", "notes", "capped", "diagnostics"],
    "lint": ["ok", "errors", "warnings", "notes", "capped", "diagnostics"],
    "bench": ["payload_schema"],
    "metrics": ["counters", "histograms"],
    "job": ["id", "tenant", "seq", "status", "elapsed_ms", "errors",
            "warnings", "diagnostics"],
}

# Required keys per bench payload_schema (the "bench" kind is a family of
# payloads; see docs/BENCHMARKS.md and docs/ROBUSTNESS.md).
BENCH_KEYS = {
    "feio.bench.pipeline/1": ["threads", "all_identical", "cases", "metrics"],
    "feio.bench.solver/2": ["threads", "all_identical", "cases", "metrics"],
    "feio.bench.serve/1": ["jobs", "ok", "rejected", "timed_out", "faulted",
                           "errors", "wall_ms", "jobs_per_sec", "p50_ms",
                           "p99_ms", "max_ms", "connections",
                           "connections_failed", "cache", "tenants",
                           "window_jobs", "windows"],
}

# Additive extensions of feio.bench.serve/1 (docs/ROBUSTNESS.md): the cache
# totals object (with enabled flags — a disabled cache must report zero
# traffic), the per-tenant array, each rolling-window object (with per-window
# tenant shares), and the optional --ablate-caches block.
SERVE_CACHE_KEYS = ("format_enabled", "format_hits", "format_misses",
                    "format_hit_rate", "factor_enabled", "factor_hits",
                    "factor_misses", "factor_load_reuses",
                    "factor_ttl_evictions", "factor_hit_rate")

# Per-case keys of the feio.bench.solver/2 ordering x storage ablation
# payload (docs/BENCHMARKS.md). A `skipped` case (either layout over the
# harness byte or flop cap) must carry zero timings; a run case must be
# `identical` (parallel output byte-equal to serial).
SOLVER_CASE_KEYS = ("name", "stage", "mesh", "ordering", "storage",
                    "auto_storage", "n", "half_bandwidth", "node_bw",
                    "band_bytes", "skyline_bytes", "serial_ms", "parallel_ms",
                    "speedup", "identical", "skipped")
SOLVER_ORDERINGS = ("none", "rcm", "hilbert")
SOLVER_STORAGES = ("banded", "skyline")
SERVE_TENANT_KEYS = ("tenant", "weight", "jobs", "ok", "rejected",
                     "timed_out", "faulted", "errors", "share")
SERVE_WINDOW_KEYS = ("jobs", "wall_ms", "jobs_per_sec", "p50_ms", "p99_ms",
                     "format_hit_rate", "factor_hit_rate", "tenant_shares")
SERVE_ABLATION_KEYS = ("wall_ms", "jobs_per_sec", "speedup")

JOB_STATUSES = ("ok", "rejected", "timeout", "faulted", "error")


def fail(msg):
    print(f"check_report: {msg}", file=sys.stderr)
    sys.exit(1)


def check_report(path, want_kind=None):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != REPORT_SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, want {REPORT_SCHEMA!r}")
    kind = doc.get("kind")
    if kind not in REQUIRED_KEYS:
        fail(f"{path}: unknown kind {kind!r}")
    if want_kind is not None and kind != want_kind:
        fail(f"{path}: kind is {kind!r}, want {want_kind!r}")
    if not doc.get("tool_version"):
        fail(f"{path}: missing tool_version")
    if doc.get("generated_by") != "feio":
        fail(f"{path}: generated_by is {doc.get('generated_by')!r}")
    for key in REQUIRED_KEYS[kind]:
        if key not in doc:
            fail(f"{path}: kind {kind} is missing required key {key!r}")
    if kind == "bench":
        payload = doc["payload_schema"]
        if payload not in BENCH_KEYS:
            fail(f"{path}: payload_schema is {payload!r}, "
                 f"want one of {tuple(BENCH_KEYS)}")
        for key in BENCH_KEYS[payload]:
            if key not in doc:
                fail(f"{path}: {payload} is missing required key {key!r}")
        if payload == "feio.bench.serve/1":
            buckets = (doc["ok"] + doc["rejected"] + doc["timed_out"]
                       + doc["faulted"] + doc["errors"])
            if buckets != doc["jobs"]:
                fail(f"{path}: serve buckets sum to {buckets}, "
                     f"want jobs={doc['jobs']}")
            check_serve_extensions(path, doc)
        elif payload == "feio.bench.solver/2":
            check_solver_cases(path, doc)
        else:
            for case in doc["cases"]:
                if not case.get("identical"):
                    fail(f"{path}: case {case.get('name')!r} not identical")
    if kind == "job":
        if doc["status"] not in JOB_STATUSES:
            fail(f"{path}: job status {doc['status']!r}, "
                 f"want one of {JOB_STATUSES}")
        if not isinstance(doc["diagnostics"], list):
            fail(f"{path}: job diagnostics is not a list")
    if kind == "metrics":
        for name, value in doc["counters"].items():
            if not isinstance(value, int):
                fail(f"{path}: counter {name!r} is not an integer")
        for name, hist in doc["histograms"].items():
            if hist["count"] < 1 or sum(hist["buckets"]) != hist["count"]:
                fail(f"{path}: histogram {name!r} buckets do not sum to count")
    print(f"{path}: valid feio.report/1 kind={kind}")


def check_solver_cases(path, doc):
    """Per-case shape of the feio.bench.solver/2 ablation payload."""
    for case in doc["cases"]:
        name = case.get("name")
        for key in SOLVER_CASE_KEYS:
            if key not in case:
                fail(f"{path}: solver case {name!r} is missing {key!r}")
        if case["ordering"] not in SOLVER_ORDERINGS:
            fail(f"{path}: solver case {name!r} ordering "
                 f"{case['ordering']!r}, want one of {SOLVER_ORDERINGS}")
        for key in ("storage", "auto_storage"):
            if case[key] not in SOLVER_STORAGES:
                fail(f"{path}: solver case {name!r} {key} "
                     f"{case[key]!r}, want one of {SOLVER_STORAGES}")
        if case["band_bytes"] < 0 or case["skyline_bytes"] < 0:
            fail(f"{path}: solver case {name!r} has negative byte counts")
        if case["skipped"]:
            if case["serial_ms"] != 0 or case["parallel_ms"] != 0:
                fail(f"{path}: skipped solver case {name!r} carries timings")
        elif not case["identical"]:
            fail(f"{path}: solver case {name!r} not identical")


def check_serve_extensions(path, doc):
    """Cache/window/ablation extensions of feio.bench.serve/1."""
    cache = doc["cache"]
    if not isinstance(cache, dict):
        fail(f"{path}: serve 'cache' is not an object")
    for key in SERVE_CACHE_KEYS:
        if key not in cache:
            fail(f"{path}: serve cache block is missing {key!r}")
    for key in ("format_hit_rate", "factor_hit_rate"):
        if not 0.0 <= cache[key] <= 1.0:
            fail(f"{path}: serve cache {key}={cache[key]} outside [0, 1]")
    for side in ("format", "factor"):
        if not isinstance(cache[f"{side}_enabled"], bool):
            fail(f"{path}: serve cache {side}_enabled is not a boolean")
        if not cache[f"{side}_enabled"]:
            busy = (cache[f"{side}_hits"] + cache[f"{side}_misses"]
                    + cache[f"{side}_hit_rate"])
            if side == "factor":
                busy += cache["factor_load_reuses"]
                busy += cache["factor_ttl_evictions"]
            if busy != 0:
                fail(f"{path}: serve {side} cache is disabled but reports "
                     "non-zero traffic")
    if cache["factor_load_reuses"] > cache["factor_hits"]:
        fail(f"{path}: factor_load_reuses={cache['factor_load_reuses']} "
             f"exceeds factor_hits={cache['factor_hits']}")
    tenants = doc["tenants"]
    if not isinstance(tenants, list):
        fail(f"{path}: serve 'tenants' is not a list")
    if doc["jobs"] > 0 and not tenants:
        fail(f"{path}: serve ran {doc['jobs']} jobs but lists no tenants")
    for t in tenants:
        for key in SERVE_TENANT_KEYS:
            if key not in t:
                fail(f"{path}: serve tenant entry is missing {key!r}: {t}")
        buckets = (t["ok"] + t["rejected"] + t["timed_out"] + t["faulted"]
                   + t["errors"])
        if buckets != t["jobs"]:
            fail(f"{path}: tenant {t['tenant']!r} buckets sum to {buckets}, "
                 f"want jobs={t['jobs']}")
        if not 0.0 <= t["share"] <= 1.0:
            fail(f"{path}: tenant {t['tenant']!r} share={t['share']} "
                 "outside [0, 1]")
        if t["weight"] < 1:
            fail(f"{path}: tenant {t['tenant']!r} weight={t['weight']} < 1")
    tenant_total = sum(t["jobs"] for t in tenants)
    if tenant_total != doc["jobs"]:
        fail(f"{path}: tenant jobs sum to {tenant_total}, "
             f"want jobs={doc['jobs']} (every job lands in one tenant)")
    windows = doc["windows"]
    if not isinstance(windows, list):
        fail(f"{path}: serve 'windows' is not a list")
    for i, win in enumerate(windows):
        for key in SERVE_WINDOW_KEYS:
            if key not in win:
                fail(f"{path}: serve window {i} is missing {key!r}")
        if win["jobs"] < 1:
            fail(f"{path}: serve window {i} has jobs={win['jobs']}")
        shares = win["tenant_shares"]
        if not isinstance(shares, dict):
            fail(f"{path}: serve window {i} tenant_shares is not an object")
        for name, share in shares.items():
            if not 0.0 <= share <= 1.0:
                fail(f"{path}: serve window {i} tenant {name!r} "
                     f"share={share} outside [0, 1]")
    if windows:
        total = sum(w["jobs"] for w in windows)
        if total != doc["jobs"]:
            fail(f"{path}: serve windows cover {total} jobs, "
                 f"want jobs={doc['jobs']}")
    if "ablation" in doc:
        ablation = doc["ablation"]
        for key in SERVE_ABLATION_KEYS:
            if key not in ablation:
                fail(f"{path}: serve ablation block is missing {key!r}")
        if ablation["jobs_per_sec"] > 0:
            want = doc["jobs_per_sec"] / ablation["jobs_per_sec"]
            if abs(ablation["speedup"] - want) > 0.05 * max(want, 1.0):
                fail(f"{path}: ablation speedup {ablation['speedup']} "
                     f"inconsistent with throughputs (want ~{want:.3f})")


def check_trace(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents")
    stacks = {}
    for e in events:
        for key in ("name", "ph", "pid", "tid", "ts"):
            if key not in e:
                fail(f"{path}: event missing {key!r}: {e}")
        if e["ph"] == "B":
            stacks.setdefault(e["tid"], []).append(e["name"])
        elif e["ph"] == "E":
            stack = stacks.get(e["tid"], [])
            if not stack or stack.pop() != e["name"]:
                fail(f"{path}: unbalanced E event {e['name']!r} "
                     f"on tid {e['tid']}")
        else:
            fail(f"{path}: unexpected phase {e['ph']!r}")
    for tid, stack in stacks.items():
        if stack:
            fail(f"{path}: {len(stack)} unclosed span(s) on tid {tid}: "
                 f"{stack}")
    print(f"{path}: valid trace, {len(events)} events, "
          f"{len(stacks)} thread(s)")


def main(argv):
    if len(argv) < 3:
        fail(__doc__.strip())
    mode, path = argv[1], argv[2]
    if mode == "report":
        want_kind = None
        if len(argv) >= 5 and argv[3] == "--kind":
            want_kind = argv[4]
        check_report(path, want_kind)
    elif mode == "trace":
        check_trace(path)
    else:
        fail(f"unknown mode {mode!r}")


if __name__ == "__main__":
    main(sys.argv)
