file(REMOVE_RECURSE
  "CMakeFiles/fem_convergence_test.dir/fem_convergence_test.cc.o"
  "CMakeFiles/fem_convergence_test.dir/fem_convergence_test.cc.o.d"
  "fem_convergence_test"
  "fem_convergence_test.pdb"
  "fem_convergence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fem_convergence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
