#include "geom/polyline.h"

#include <algorithm>

#include "util/error.h"

namespace feio::geom {

Polyline::Polyline(std::vector<Vec2> points) : points_(std::move(points)) {
  cumlen_.resize(points_.size(), 0.0);
  for (std::size_t i = 1; i < points_.size(); ++i) {
    cumlen_[i] = cumlen_[i - 1] + distance(points_[i - 1], points_[i]);
  }
}

double Polyline::length() const {
  return cumlen_.empty() ? 0.0 : cumlen_.back();
}

Vec2 Polyline::point_at(double s) const {
  FEIO_ASSERT(!points_.empty());
  if (points_.size() == 1) return points_.front();
  s = std::clamp(s, 0.0, 1.0);

  const double total = length();
  if (total == 0.0) {
    // Degenerate: all points coincide; interpolate by index.
    const double fidx = s * (points_.size() - 1);
    const auto i = static_cast<std::size_t>(fidx);
    if (i + 1 >= points_.size()) return points_.back();
    return lerp(points_[i], points_[i + 1], fidx - i);
  }

  const double target = s * total;
  auto it = std::lower_bound(cumlen_.begin(), cumlen_.end(), target);
  if (it == cumlen_.begin()) return points_.front();
  const auto hi = static_cast<std::size_t>(it - cumlen_.begin());
  const auto lo = hi - 1;
  if (hi >= points_.size()) return points_.back();
  const double seg = cumlen_[hi] - cumlen_[lo];
  const double t = seg > 0.0 ? (target - cumlen_[lo]) / seg : 0.0;
  return lerp(points_[lo], points_[hi], t);
}

std::vector<double> Polyline::vertex_params() const {
  std::vector<double> params(points_.size(), 0.0);
  if (points_.size() <= 1) return params;
  const double total = length();
  if (total == 0.0) {
    for (std::size_t i = 0; i < points_.size(); ++i) {
      params[i] = static_cast<double>(i) / (points_.size() - 1);
    }
    return params;
  }
  for (std::size_t i = 0; i < points_.size(); ++i) {
    params[i] = cumlen_[i] / total;
  }
  return params;
}

}  // namespace feio::geom
