#include "idlz/subdivision.h"

#include <cstdlib>
#include <string>

namespace feio::idlz {
namespace {

std::string sub_ctx(const Subdivision& s) {
  return "subdivision " + std::to_string(s.id);
}

}  // namespace

void Subdivision::strip_span(int s, int& lo, int& hi) const {
  if (is_col_trapezoid()) {
    // Strip s is column k1 + s; span is in L.
    const int t = std::abs(ntapcm);
    const int dist_from_long =
        ntapcm > 0 ? (cols() - 1 - s)   // right column is the long side
                   : s;                 // left column is the long side
    lo = l1 + t * dist_from_long;
    hi = l2 - t * dist_from_long;
  } else if (is_row_trapezoid()) {
    // Strip s is row l1 + s; span is in K.
    const int t = std::abs(ntaprw);
    const int dist_from_long =
        ntaprw > 0 ? (rows() - 1 - s)   // top row is the long side
                   : s;                 // bottom row is the long side
    lo = k1 + t * dist_from_long;
    hi = k2 - t * dist_from_long;
  } else {
    lo = k1;
    hi = k2;
  }
}

int Subdivision::strip_width(int s) const {
  int lo, hi;
  strip_span(s, lo, hi);
  return hi - lo + 1;
}

GridPoint Subdivision::strip_node(int s, int j) const {
  int lo, hi;
  strip_span(s, lo, hi);
  FEIO_ASSERT(j >= 0 && lo + j <= hi);
  if (is_col_trapezoid()) return GridPoint{k1 + s, lo + j};
  return GridPoint{lo + j, l1 + s};
}

std::vector<GridPoint> Subdivision::grid_points() const {
  std::vector<GridPoint> pts;
  for (int s = 0; s < strip_count(); ++s) {
    const int w = strip_width(s);
    for (int j = 0; j < w; ++j) pts.push_back(strip_node(s, j));
  }
  return pts;
}

bool Subdivision::contains(int k, int l) const {
  if (k < k1 || k > k2 || l < l1 || l > l2) return false;
  const int s = is_col_trapezoid() ? k - k1 : l - l1;
  int lo, hi;
  strip_span(s, lo, hi);
  const int cross = is_col_trapezoid() ? l : k;
  return cross >= lo && cross <= hi;
}

bool Subdivision::is_triangle() const {
  if (is_rectangle()) return false;
  const int first = strip_width(0);
  const int last = strip_width(strip_count() - 1);
  return first == 1 || last == 1;
}

void Subdivision::validate() const {
  FEIO_REQUIRE(k1 >= 1 && l1 >= 1,
               "corner coordinates must be positive integers");
  if (!(k2 > k1 && l2 > l1)) {
    fail("upper-right corner must be strictly above and to the right of the "
         "lower-left corner",
         sub_ctx(*this));
  }
  if (ntaprw != 0 && ntapcm != 0) {
    fail("NTAPRW and NTAPCM cannot both be non-zero", sub_ctx(*this));
  }
  for (int s = 0; s < strip_count(); ++s) {
    int lo, hi;
    strip_span(s, lo, hi);
    if (lo > hi) {
      fail("trapezoid short side shrinks past a point: strip " +
               std::to_string(s) + " would have " + std::to_string(hi - lo + 1) +
               " nodes",
           sub_ctx(*this));
    }
  }
  // The long side must exactly fill the corner-to-corner span, i.e. the
  // declared bounding box is tight. For row trapezoids the long row spans
  // k1..k2 by construction; nothing further to check. Same for columns.
}

std::vector<GridPoint> side_points(const Subdivision& s, Side side) {
  std::vector<GridPoint> pts;
  const int strips = s.strip_count();
  switch (side) {
    case Side::kParallelLow: {
      const int w = s.strip_width(0);
      for (int j = 0; j < w; ++j) pts.push_back(s.strip_node(0, j));
      break;
    }
    case Side::kParallelHigh: {
      const int w = s.strip_width(strips - 1);
      for (int j = 0; j < w; ++j) pts.push_back(s.strip_node(strips - 1, j));
      break;
    }
    case Side::kCrossLow:
      for (int st = 0; st < strips; ++st) pts.push_back(s.strip_node(st, 0));
      break;
    case Side::kCrossHigh:
      for (int st = 0; st < strips; ++st) {
        pts.push_back(s.strip_node(st, s.strip_width(st) - 1));
      }
      break;
  }
  return pts;
}

}  // namespace feio::idlz
