#include "idlz/renumber.h"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <numeric>

#include "mesh/bandwidth.h"
#include "mesh/topology.h"
#include "util/error.h"

namespace feio::idlz {
namespace {

// BFS from `start`; returns level of each node (-1 when unreached) and the
// index of a deepest node.
std::vector<int> bfs_levels(const std::vector<std::vector<int>>& adj,
                            int start, int& deepest) {
  std::vector<int> level(adj.size(), -1);
  std::deque<int> queue{start};
  level[static_cast<size_t>(start)] = 0;
  deepest = start;
  while (!queue.empty()) {
    const int n = queue.front();
    queue.pop_front();
    for (int nb : adj[static_cast<size_t>(n)]) {
      if (level[static_cast<size_t>(nb)] < 0) {
        level[static_cast<size_t>(nb)] = level[static_cast<size_t>(n)] + 1;
        if (level[static_cast<size_t>(nb)] > level[static_cast<size_t>(deepest)]) {
          deepest = nb;
        }
        queue.push_back(nb);
      }
    }
  }
  return level;
}

}  // namespace

int pseudo_peripheral_node(const std::vector<std::vector<int>>& adjacency,
                           int seed) {
  // George–Liu repeated BFS. Each round roots a level structure at
  // `candidate`; while the eccentricity keeps growing, the minimum-degree
  // node of the deepest level becomes the next candidate (the "shrinking
  // strategy" — low degree keeps the next level structure narrow). We
  // return the deepest-level pick of the last structure that grew, whose
  // eccentricity the following round verified. The pre-fix code returned
  // the raw BFS frontier node instead: frontier discovery order is
  // adjacency-list order, so it could land on a high-degree node of the
  // deepest level and seed Cuthill–McKee from a non-peripheral corner.
  int best = seed;
  int depth = -1;
  int candidate = seed;
  for (int iter = 0; iter < 16; ++iter) {
    int far = candidate;
    const std::vector<int> level = bfs_levels(adjacency, candidate, far);
    const int ecc = level[static_cast<size_t>(far)];
    if (ecc <= depth) break;
    depth = ecc;
    int pick = far;
    for (int v = 0; v < static_cast<int>(adjacency.size()); ++v) {
      if (level[static_cast<size_t>(v)] != ecc) continue;
      const size_t dv = adjacency[static_cast<size_t>(v)].size();
      const size_t dp = adjacency[static_cast<size_t>(pick)].size();
      if (dv < dp || (dv == dp && v < pick)) pick = v;
    }
    best = pick;
    candidate = pick;
  }
  return best;
}

std::vector<int> cuthill_mckee_permutation(const mesh::TriMesh& mesh,
                                           bool reverse) {
  const mesh::Topology topo(mesh);
  const int n = mesh.num_nodes();
  std::vector<std::vector<int>> adj(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) adj[static_cast<size_t>(i)] = topo.neighbors(i);

  std::vector<int> order;  // order[new] = old
  order.reserve(static_cast<size_t>(n));
  std::vector<char> visited(static_cast<size_t>(n), 0);

  auto degree = [&](int i) {
    return static_cast<int>(adj[static_cast<size_t>(i)].size());
  };

  for (int seed = 0; seed < n; ++seed) {
    if (visited[static_cast<size_t>(seed)]) continue;
    const int start =
        adj[static_cast<size_t>(seed)].empty()
            ? seed
            : pseudo_peripheral_node(adj, seed);

    std::deque<int> queue{start};
    visited[static_cast<size_t>(start)] = 1;
    while (!queue.empty()) {
      const int cur = queue.front();
      queue.pop_front();
      order.push_back(cur);
      std::vector<int> nbrs;
      for (int nb : adj[static_cast<size_t>(cur)]) {
        if (!visited[static_cast<size_t>(nb)]) nbrs.push_back(nb);
      }
      std::sort(nbrs.begin(), nbrs.end(), [&](int a, int b) {
        const int da = degree(a);
        const int db = degree(b);
        return da != db ? da < db : a < b;
      });
      for (int nb : nbrs) {
        visited[static_cast<size_t>(nb)] = 1;
        queue.push_back(nb);
      }
    }
  }
  FEIO_ASSERT(static_cast<int>(order.size()) == n);

  if (reverse) std::reverse(order.begin(), order.end());

  std::vector<int> perm(static_cast<size_t>(n));  // perm[old] = new
  for (int nu = 0; nu < n; ++nu) {
    perm[static_cast<size_t>(order[static_cast<size_t>(nu)])] = nu;
  }
  return perm;
}

namespace {

// Hilbert d-index of a grid cell (x, y), `bits` levels of recursion — the
// classic rotate-and-accumulate walk (omega_h hilbert.hpp carries the same
// idiom). Pure integer arithmetic: two meshes with bitwise-equal
// coordinates always order identically.
std::uint64_t hilbert_d(int bits, std::uint32_t x, std::uint32_t y) {
  std::uint64_t d = 0;
  for (std::uint32_t s = 1u << (bits - 1); s > 0; s >>= 1) {
    const std::uint32_t rx = (x & s) != 0 ? 1u : 0u;
    const std::uint32_t ry = (y & s) != 0 ? 1u : 0u;
    d += static_cast<std::uint64_t>(s) * s * ((3u * rx) ^ ry);
    if (ry == 0) {
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      std::swap(x, y);
    }
  }
  return d;
}

}  // namespace

std::vector<int> hilbert_permutation(const mesh::TriMesh& mesh) {
  const int n = mesh.num_nodes();
  std::vector<int> perm(static_cast<size_t>(n));
  if (n == 0) return perm;

  double min_x = mesh.pos(0).x, max_x = min_x;
  double min_y = mesh.pos(0).y, max_y = min_y;
  for (int i = 1; i < n; ++i) {
    min_x = std::min(min_x, mesh.pos(i).x);
    max_x = std::max(max_x, mesh.pos(i).x);
    min_y = std::min(min_y, mesh.pos(i).y);
    max_y = std::max(max_y, mesh.pos(i).y);
  }
  // Degenerate spans (all nodes collinear on an axis) quantize to cell 0 on
  // that axis; the tie-break below keeps the order deterministic.
  constexpr int kBits = 16;
  constexpr double kSide = static_cast<double>((1u << kBits) - 1);
  const double span_x = max_x - min_x;
  const double span_y = max_y - min_y;

  std::vector<std::uint64_t> key(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double fx = span_x > 0.0 ? (mesh.pos(i).x - min_x) / span_x : 0.0;
    const double fy = span_y > 0.0 ? (mesh.pos(i).y - min_y) / span_y : 0.0;
    const auto qx = static_cast<std::uint32_t>(
        std::clamp(fx * kSide, 0.0, kSide));
    const auto qy = static_cast<std::uint32_t>(
        std::clamp(fy * kSide, 0.0, kSide));
    key[static_cast<size_t>(i)] = hilbert_d(kBits, qx, qy);
  }

  std::vector<int> order(static_cast<size_t>(n));  // order[new] = old
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const std::uint64_t ka = key[static_cast<size_t>(a)];
    const std::uint64_t kb = key[static_cast<size_t>(b)];
    return ka != kb ? ka < kb : a < b;
  });
  for (int nu = 0; nu < n; ++nu) {
    perm[static_cast<size_t>(order[static_cast<size_t>(nu)])] = nu;
  }
  return perm;
}

RenumberReport renumber(mesh::TriMesh& mesh, NumberingScheme scheme) {
  RenumberReport report;
  report.bandwidth_before = mesh::bandwidth(mesh);
  report.profile_before = mesh::profile(mesh);
  report.bandwidth_after = report.bandwidth_before;
  report.profile_after = report.profile_before;
  if (mesh.num_nodes() == 0) return report;

  struct Candidate {
    NumberingScheme scheme;
    std::vector<int> perm;
    int bandwidth = 0;
    long profile = 0;
  };
  std::vector<Candidate> candidates;
  auto add_candidate = [&](NumberingScheme s, std::vector<int> perm) {
    Candidate c;
    c.scheme = s;
    c.perm = std::move(perm);
    mesh::TriMesh trial = mesh;
    trial.renumber_nodes(c.perm);
    c.bandwidth = mesh::bandwidth(trial);
    c.profile = mesh::profile(trial);
    candidates.push_back(std::move(c));
  };

  if (scheme == NumberingScheme::kCuthillMcKee ||
      scheme == NumberingScheme::kBest) {
    add_candidate(NumberingScheme::kCuthillMcKee,
                  cuthill_mckee_permutation(mesh, /*reverse=*/false));
  }
  if (scheme == NumberingScheme::kReverseCuthillMcKee ||
      scheme == NumberingScheme::kBest) {
    add_candidate(NumberingScheme::kReverseCuthillMcKee,
                  cuthill_mckee_permutation(mesh, /*reverse=*/true));
  }
  if (scheme == NumberingScheme::kHilbert) {
    add_candidate(NumberingScheme::kHilbert, hilbert_permutation(mesh));
  }

  const Candidate* best = nullptr;
  for (const Candidate& c : candidates) {
    if (best == nullptr || c.bandwidth < best->bandwidth ||
        (c.bandwidth == best->bandwidth && c.profile < best->profile)) {
      best = &c;
    }
  }
  FEIO_ASSERT(best != nullptr);

  const bool improves =
      best->bandwidth < report.bandwidth_before ||
      (best->bandwidth == report.bandwidth_before &&
       best->profile < report.profile_before);
  if (improves) {
    mesh.renumber_nodes(best->perm);
    report.bandwidth_after = best->bandwidth;
    report.profile_after = best->profile;
    report.used = best->scheme;
    report.applied = true;
    report.permutation = best->perm;
  }
  return report;
}

}  // namespace feio::idlz
