file(REMOVE_RECURSE
  "CMakeFiles/tbeam_thermal.dir/tbeam_thermal.cpp.o"
  "CMakeFiles/tbeam_thermal.dir/tbeam_thermal.cpp.o.d"
  "tbeam_thermal"
  "tbeam_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbeam_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
