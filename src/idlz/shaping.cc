#include "idlz/shaping.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <map>
#include <numeric>
#include <string>

#include "geom/arc.h"
#include "util/cancel.h"
#include "util/fault.h"
#include "util/parallel.h"

namespace feio::idlz {
namespace {

std::string sub_ctx(const Subdivision& s) {
  return "subdivision " + std::to_string(s.id);
}

// Evaluates a located side at fractional node index f (0 <= f <= n-1) by
// linear interpolation between adjacent side nodes. This index-based rule
// (rather than arclength) propagates the user's chosen node-spacing gradient
// into the interior, matching the FORTRAN interpolation.
geom::Vec2 side_at(const std::vector<geom::Vec2>& pts, double f) {
  FEIO_ASSERT(!pts.empty());
  if (pts.size() == 1) return pts.front();
  f = std::clamp(f, 0.0, static_cast<double>(pts.size() - 1));
  const auto lo = static_cast<size_t>(f);
  if (lo + 1 >= pts.size()) return pts.back();
  return geom::lerp(pts[lo], pts[lo + 1], f - static_cast<double>(lo));
}

struct SideState {
  std::vector<int> nodes;       // node ids along the side
  bool located = false;         // every node has coordinates
  int own_card_hits = 0;        // nodes located by this subdivision's cards
};

}  // namespace

std::vector<GridPoint> shape_line_run(const ShapeLine& line) {
  const int dk = line.k2 - line.k1;
  const int dl = line.l2 - line.l1;
  if (dk == 0 && dl == 0) return {GridPoint{line.k1, line.l1}};
  const int g = std::gcd(std::abs(dk), std::abs(dl));
  const int sk = dk / g;
  const int sl = dl / g;
  std::vector<GridPoint> run;
  run.reserve(static_cast<size_t>(g) + 1);
  for (int j = 0; j <= g; ++j) {
    run.push_back(GridPoint{line.k1 + sk * j, line.l1 + sl * j});
  }
  return run;
}

ShapingReport shape(const std::vector<Subdivision>& subdivisions,
                    const std::vector<ShapingSpec>& specs, Assembly& assembly,
                    const Limits& limits) {
  ShapingReport report;
  std::vector<char> located(static_cast<size_t>(assembly.mesh.num_nodes()), 0);
  std::vector<char> by_card(static_cast<size_t>(assembly.mesh.num_nodes()), 0);

  std::map<int, const ShapingSpec*> spec_of;
  for (const ShapingSpec& sp : specs) {
    FEIO_REQUIRE(spec_of.emplace(sp.subdivision_id, &sp).second,
                 "duplicate shaping spec for subdivision " +
                     std::to_string(sp.subdivision_id));
    const bool known =
        std::any_of(subdivisions.begin(), subdivisions.end(),
                    [&](const Subdivision& s) {
                      return s.id == sp.subdivision_id;
                    });
    FEIO_REQUIRE(known, "shaping spec names unknown subdivision " +
                            std::to_string(sp.subdivision_id));
  }

  for (size_t si = 0; si < subdivisions.size(); ++si) {
    FEIO_CHECK_CANCEL("idlz.shape.subdivision");
    FEIO_FAULT("idlz.shape");
    const Subdivision& sub = subdivisions[si];
    std::vector<char> own(static_cast<size_t>(assembly.mesh.num_nodes()), 0);

    // --- Apply this subdivision's type-6 cards. -------------------------
    auto it = spec_of.find(sub.id);
    if (it != spec_of.end()) {
      for (const ShapeLine& line : it->second->lines) {
        const std::vector<GridPoint> run = shape_line_run(line);
        for (const GridPoint& gp : run) {
          if (!sub.contains(gp.k, gp.l)) {
            fail("shape line covers grid point (" + std::to_string(gp.k) +
                     "," + std::to_string(gp.l) +
                     ") outside the subdivision",
                 sub_ctx(sub));
          }
        }
        std::vector<geom::Vec2> positions;
        if (run.size() == 1) {
          positions = {line.p1};  // point-side of a triangular subdivision
        } else {
          const geom::Arc arc(line.p1, line.p2, line.radius,
                              limits.max_arc_subtended_deg);
          positions = arc.sample(static_cast<int>(run.size()) - 1);
        }
        for (size_t j = 0; j < run.size(); ++j) {
          const int n = assembly.node_at.at(run[j]);
          assembly.mesh.set_pos(n, positions[j]);
          if (!located[static_cast<size_t>(n)]) ++report.nodes_from_cards;
          located[static_cast<size_t>(n)] = 1;
          by_card[static_cast<size_t>(n)] = 1;
          own[static_cast<size_t>(n)] = 1;
        }
      }
    }

    // --- Determine which opposite pair of sides is fully located. -------
    auto side_state = [&](Side side) {
      SideState st;
      for (const GridPoint& gp : side_points(sub, side)) {
        const int n = assembly.node_at.at(gp);
        st.nodes.push_back(n);
        st.own_card_hits += own[static_cast<size_t>(n)];
      }
      st.located = std::all_of(st.nodes.begin(), st.nodes.end(), [&](int n) {
        return located[static_cast<size_t>(n)] != 0;
      });
      return st;
    };
    const SideState par_lo = side_state(Side::kParallelLow);
    const SideState par_hi = side_state(Side::kParallelHigh);
    const SideState cross_lo = side_state(Side::kCrossLow);
    const SideState cross_hi = side_state(Side::kCrossHigh);

    const bool parallel_ok = par_lo.located && par_hi.located;
    const bool cross_ok = cross_lo.located && cross_hi.located;
    if (!parallel_ok && !cross_ok) {
      fail("no fully-located pair of opposite sides; locate every node on "
           "two opposite sides with type-6 cards (or via an adjacent, "
           "earlier subdivision)",
           sub_ctx(sub));
    }
    // Prefer the pair the user's own cards shaped; break ties toward the
    // parallel pair.
    bool use_parallel = parallel_ok;
    if (parallel_ok && cross_ok) {
      const int par_hits = par_lo.own_card_hits + par_hi.own_card_hits;
      const int cross_hits = cross_lo.own_card_hits + cross_hi.own_card_hits;
      use_parallel = par_hits >= cross_hits;
    }

    // --- Locate the remaining nodes by linear interpolation. ------------
    // Strips touch disjoint node sets within a subdivision (only side
    // nodes are shared, and those are already located, making place() a
    // read-only no-op for them), so the strip loop runs in parallel with
    // per-chunk interpolation counters summed in chunk order. Each node's
    // position depends only on the side snapshots, never on another
    // strip's result — output is identical to a serial sweep.
    const int strips = sub.strip_count();
    auto place = [&](int n, geom::Vec2 p, int& count) {
      if (located[static_cast<size_t>(n)]) return;  // never move a node twice
      assembly.mesh.set_pos(n, p);
      located[static_cast<size_t>(n)] = 1;
      ++count;
    };
    const int chunks = util::chunk_count(strips, 0);
    std::vector<int> interpolated(static_cast<size_t>(chunks), 0);

    if (use_parallel) {
      auto positions_of = [&](const SideState& st) {
        std::vector<geom::Vec2> pts;
        pts.reserve(st.nodes.size());
        for (int n : st.nodes) pts.push_back(assembly.mesh.pos(n));
        return pts;
      };
      const std::vector<geom::Vec2> low = positions_of(par_lo);
      const std::vector<geom::Vec2> high = positions_of(par_hi);
      util::parallel_chunks(
          strips, chunks, [&](int c, std::int64_t begin, std::int64_t end) {
            for (int s = static_cast<int>(begin); s < end; ++s) {
              const double v =
                  strips > 1 ? static_cast<double>(s) / (strips - 1) : 0.0;
              const int w = sub.strip_width(s);
              for (int j = 0; j < w; ++j) {
                const double u =
                    w > 1 ? static_cast<double>(j) / (w - 1) : 0.5;
                const geom::Vec2 pa = side_at(low, u * (low.size() - 1));
                const geom::Vec2 pb = side_at(high, u * (high.size() - 1));
                place(assembly.node_at.at(sub.strip_node(s, j)),
                      geom::lerp(pa, pb, v),
                      interpolated[static_cast<size_t>(c)]);
              }
            }
          });
    } else {
      util::parallel_chunks(
          strips, chunks, [&](int c, std::int64_t begin, std::int64_t end) {
            for (int s = static_cast<int>(begin); s < end; ++s) {
              const int w = sub.strip_width(s);
              const geom::Vec2 pa =
                  assembly.mesh.pos(cross_lo.nodes[static_cast<size_t>(s)]);
              const geom::Vec2 pb =
                  assembly.mesh.pos(cross_hi.nodes[static_cast<size_t>(s)]);
              for (int j = 0; j < w; ++j) {
                const double u =
                    w > 1 ? static_cast<double>(j) / (w - 1) : 0.5;
                place(assembly.node_at.at(sub.strip_node(s, j)),
                      geom::lerp(pa, pb, u),
                      interpolated[static_cast<size_t>(c)]);
              }
            }
          });
    }
    for (int count : interpolated) report.nodes_interpolated += count;
  }

  const auto unlocated =
      std::count(located.begin(), located.end(), static_cast<char>(0));
  FEIO_REQUIRE(unlocated == 0, std::to_string(unlocated) +
                                   " nodes remain unlocated after shaping");

  assembly.mesh.orient_ccw();
  assembly.mesh.classify_boundary();
  return report;
}

}  // namespace feio::idlz
