// The lint rule registry.
//
// Every lint rule has a stable code (L-FMT-001, L-SUB-002, ...), a default
// severity, a short kebab-case name, a one-line summary, and the paper
// section the rule derives from. The registry is the single source of truth
// consumed by the SARIF renderer (tool.driver.rules), by docs/LINTS.md, and
// by tests that assert the catalog stays consistent.
//
// Codes are stable across releases: messages may be reworded, codes may not
// be renumbered (same contract as docs/DIAGNOSTICS.md).
#pragma once

#include <string_view>
#include <vector>

#include "util/diag.h"

namespace feio::lint {

struct Rule {
  std::string_view code;      // "L-FMT-001"
  Severity severity;          // default severity of findings
  std::string_view name;      // "format-int-width" (SARIF rule name)
  std::string_view summary;   // one-line description
  std::string_view paper;     // provenance, e.g. "Appendix B, card type 7"
};

// All registered rules, sorted by code.
const std::vector<Rule>& rules();

// Registry lookup; nullptr for unknown codes (parse-time E-* diagnostics
// are not lint rules and resolve to nullptr).
const Rule* find_rule(std::string_view code);

}  // namespace feio::lint
