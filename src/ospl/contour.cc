#include "ospl/contour.h"

#include <algorithm>
#include <array>

#include "util/error.h"

namespace feio::ospl {

void element_contour(const mesh::TriMesh& mesh,
                     const std::vector<double>& values, int element,
                     double level, std::vector<ContourSegment>& out) {
  const mesh::Element& el = mesh.element(element);
  std::array<geom::Vec2, 2> pts;
  std::array<mesh::Edge, 2> edges;
  int found = 0;
  for (int k = 0; k < 3 && found < 2; ++k) {
    const int i = el.n[static_cast<size_t>(k)];
    const int j = el.n[static_cast<size_t>((k + 1) % 3)];
    const double si = values[static_cast<size_t>(i)];
    const double sj = values[static_cast<size_t>(j)];
    // Half-open rule: a corner exactly at the level belongs to the "above"
    // side, so every triangle is crossed by 0 or 2 edges.
    const bool i_above = si >= level;
    const bool j_above = sj >= level;
    if (i_above == j_above) continue;
    const double t = (level - si) / (sj - si);
    pts[static_cast<size_t>(found)] =
        geom::lerp(mesh.pos(i), mesh.pos(j), t);
    edges[static_cast<size_t>(found)] = mesh::Edge(i, j);
    ++found;
  }
  if (found == 2) {
    out.push_back(ContourSegment{pts[0], pts[1], level, element, edges[0],
                                 edges[1]});
  }
}

std::vector<ContourSegment> extract_contours(
    const mesh::TriMesh& mesh, const std::vector<double>& values,
    const std::vector<double>& levels) {
  FEIO_REQUIRE(static_cast<int>(values.size()) == mesh.num_nodes(),
               "one value per node required");
  std::vector<ContourSegment> out;
  for (int e = 0; e < mesh.num_elements(); ++e) {
    // "The number and size of the contours passing through the element are
    // determined" — skip levels outside the element's value range.
    const mesh::Element& el = mesh.element(e);
    const double lo =
        std::min({values[static_cast<size_t>(el.n[0])],
                  values[static_cast<size_t>(el.n[1])],
                  values[static_cast<size_t>(el.n[2])]});
    const double hi =
        std::max({values[static_cast<size_t>(el.n[0])],
                  values[static_cast<size_t>(el.n[1])],
                  values[static_cast<size_t>(el.n[2])]});
    for (double level : levels) {
      if (level < lo || level > hi) continue;
      element_contour(mesh, values, e, level, out);
    }
  }
  return out;
}

bool clip_segment(const geom::BBox& window, ContourSegment& seg) {
  double t0 = 0.0;
  double t1 = 1.0;
  const geom::Vec2 d = seg.b - seg.a;
  const std::array<double, 4> p{-d.x, d.x, -d.y, d.y};
  const std::array<double, 4> q{seg.a.x - window.lo.x, window.hi.x - seg.a.x,
                                seg.a.y - window.lo.y, window.hi.y - seg.a.y};
  for (int i = 0; i < 4; ++i) {
    if (p[static_cast<size_t>(i)] == 0.0) {
      if (q[static_cast<size_t>(i)] < 0.0) return false;  // parallel outside
      continue;
    }
    const double r = q[static_cast<size_t>(i)] / p[static_cast<size_t>(i)];
    if (p[static_cast<size_t>(i)] < 0.0) {
      t0 = std::max(t0, r);
    } else {
      t1 = std::min(t1, r);
    }
    if (t0 > t1) return false;
  }
  const geom::Vec2 a = seg.a;
  if (t1 < 1.0) {
    seg.b = a + d * t1;
    seg.edge_b = mesh::Edge();  // end point no longer on a mesh edge
  }
  if (t0 > 0.0) {
    seg.a = a + d * t0;
    seg.edge_a = mesh::Edge();
  }
  return true;
}

}  // namespace feio::ospl
