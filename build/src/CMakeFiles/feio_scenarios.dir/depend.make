# Empty dependencies file for feio_scenarios.
# This may be replaced when dependencies are built.
