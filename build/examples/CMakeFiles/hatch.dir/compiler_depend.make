# Empty compiler generated dependencies file for hatch.
# This may be replaced when dependencies are built.
