# Empty compiler generated dependencies file for fem_test.
# This may be replaced when dependencies are built.
