#include "ospl/deck.h"

#include <sstream>

#include "cards/card_io.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/metrics.h"
#include "util/strings.h"
#include "util/trace.h"

namespace feio::ospl {
namespace {

using cards::as_alpha;
using cards::as_int;
using cards::as_real;
using cards::CardReader;
using cards::CardWriter;
using cards::Format;

const Format& fmt_type1() {
  static const Format f = Format::parse("(2I5,5F10.4)");
  return f;
}
const Format& fmt_title() {
  static const Format f = Format::parse("(12A6)");
  return f;
}
const Format& fmt_type3() {
  static const Format f = Format::parse("(2F9.5,22X,F10.3,I1)");
  return f;
}
const Format& fmt_type4() {
  static const Format f = Format::parse("(3I5)");
  return f;
}

std::string read_title_card(CardReader& reader, DiagSink& sink, bool& ok) {
  const auto fields = reader.try_read(fmt_title(), sink);
  if (!fields) {
    ok = false;
    return {};
  }
  std::string title;
  for (const auto& f : *fields) title += as_alpha(f);
  return std::string(trim(title));
}

// Structural sanity caps; both counts come from I5 fields, so 99999 is the
// largest value a valid card can even punch.
constexpr long kMaxNodes = 100000;
constexpr long kMaxElements = 100000;

}  // namespace

OsplCase read_deck(std::istream& in, DiagSink& sink,
                   const std::string& deck_name) {
  FEIO_TRACE_SPAN(span, "ospl.read_deck");
  span.arg("deck", deck_name);
  CardReader reader(in, deck_name);
  OsplCase c;
  c.deck_name = deck_name;
  struct CountOnExit {
    const OsplCase& c;
    const CardReader& reader;
    util::TraceSpan& span;
    ~CountOnExit() {
      FEIO_METRIC_ADD("ospl.nodes_read", c.mesh.num_nodes());
      FEIO_METRIC_ADD("ospl.cards_read", reader.card_number());
      span.arg("nodes", c.mesh.num_nodes());
      span.arg("cards", reader.card_number());
    }
  } count_on_exit{c, reader, span};

  FEIO_FAULT("deck.parse");
  const auto t1 = reader.try_read(fmt_type1(), sink);
  if (!t1) return c;
  c.header_card = reader.card_number();
  const long nn = as_int((*t1)[0]);
  const long ne = as_int((*t1)[1]);
  if (nn < 1 || nn > kMaxNodes) {
    sink.error("E-OSPL-001",
               "NN must be in 1.." + std::to_string(kMaxNodes) + ", got " +
                   std::to_string(nn),
               reader.loc());
    return c;
  }
  if (ne < 1 || ne > kMaxElements) {
    sink.error("E-OSPL-002",
               "NE must be in 1.." + std::to_string(kMaxElements) + ", got " +
                   std::to_string(ne),
               reader.loc());
    return c;
  }
  const double xmx = as_real((*t1)[2]);
  const double xmn = as_real((*t1)[3]);
  const double ymx = as_real((*t1)[4]);
  const double ymn = as_real((*t1)[5]);
  c.delta = as_real((*t1)[6]);
  if (xmx > xmn || ymx > ymn) {
    c.window.lo = {xmn, ymn};
    c.window.hi = {xmx, ymx};
  }

  bool ok = true;
  c.title1 = read_title_card(reader, sink, ok);
  if (!ok) return c;
  c.title2 = read_title_card(reader, sink, ok);
  if (!ok) return c;

  c.values.reserve(static_cast<size_t>(nn));
  for (long i = 0; i < nn; ++i) {
    const auto t3 = reader.try_read(fmt_type3(), sink);
    if (!t3) return c;
    const geom::Vec2 pos{as_real((*t3)[0]), as_real((*t3)[1])};
    c.values.push_back(as_real((*t3)[2]));
    long flag = as_int((*t3)[3]);
    if (flag < 0 || flag > 2) {
      sink.error("E-OSPL-003",
                 "nodal boundary flag N(I) must be 0, 1 or 2, got " +
                     std::to_string(flag),
                 reader.loc());
      flag = 0;
    }
    c.mesh.add_node(pos, static_cast<mesh::BoundaryKind>(flag));
  }

  for (long e = 0; e < ne; ++e) {
    const auto t4 = reader.try_read(fmt_type4(), sink);
    if (!t4) return c;
    const long n1 = as_int((*t4)[0]);
    const long n2 = as_int((*t4)[1]);
    const long n3 = as_int((*t4)[2]);
    if (n1 < 1 || n1 > nn || n2 < 1 || n2 > nn || n3 < 1 || n3 > nn) {
      sink.error("E-OSPL-004",
                 "element card references a node number outside 1.." +
                     std::to_string(nn),
                 reader.loc());
      continue;  // skip the element, keep reading
    }
    if (n1 == n2 || n2 == n3 || n1 == n3) {
      sink.error("E-OSPL-004", "element card repeats a node number",
                 reader.loc());
      continue;  // skip the element, keep reading
    }
    c.mesh.add_element(static_cast<int>(n1) - 1, static_cast<int>(n2) - 1,
                       static_cast<int>(n3) - 1);
  }
  return c;
}

OsplCase read_deck(std::istream& in) {
  DiagSink sink;
  OsplCase c = read_deck(in, sink);
  sink.throw_if_errors();
  return c;
}

OsplCase read_deck_string(const std::string& deck) {
  std::istringstream in(deck);
  return read_deck(in);
}

OsplCase read_deck_string(const std::string& deck, DiagSink& sink,
                          const std::string& deck_name) {
  std::istringstream in(deck);
  return read_deck(in, sink, deck_name);
}

std::string write_deck(const OsplCase& c) {
  CardWriter out;
  const bool windowed = c.window.valid();
  out.write({static_cast<long>(c.mesh.num_nodes()),
             static_cast<long>(c.mesh.num_elements()),
             windowed ? c.window.hi.x : 0.0, windowed ? c.window.lo.x : 0.0,
             windowed ? c.window.hi.y : 0.0, windowed ? c.window.lo.y : 0.0,
             c.delta},
            fmt_type1());
  out.write_raw(c.title1);
  out.write_raw(c.title2);
  for (int i = 0; i < c.mesh.num_nodes(); ++i) {
    const mesh::Node& n = c.mesh.node(i);
    out.write({n.pos.x, n.pos.y, c.values[static_cast<size_t>(i)],
               static_cast<long>(static_cast<int>(n.boundary))},
              fmt_type3());
  }
  for (int e = 0; e < c.mesh.num_elements(); ++e) {
    const mesh::Element& el = c.mesh.element(e);
    out.write({static_cast<long>(el.n[0] + 1), static_cast<long>(el.n[1] + 1),
               static_cast<long>(el.n[2] + 1)},
              fmt_type4());
  }
  return out.str();
}

}  // namespace feio::ospl
