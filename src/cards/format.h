// FORTRAN FORMAT engine for fixed-column card decks.
//
// IDLZ reads its seven card types with FORMATs such as (4I5), (12A6) and
// (4I5,5F8.4); OSPL reads (2I5,5F10.4) and (2F9.5,22X,F10.3,I1); and IDLZ
// punches its output in a FORMAT supplied *as data* by the user (card type
// 7), e.g. (2F9.5,51X,I3,5X,I3). Reproducing that behaviour requires an
// actual runtime FORMAT interpreter, which this module provides for the
// edit descriptors the decks use: Iw, Fw.d, Ew.d, Aw, nX, with repeat
// counts on I/F/E/A.
//
// FORTRAN blank-field semantics are honoured on input: an all-blank numeric
// field reads as zero, and an F field without an explicit decimal point has
// the point implied `d` digits from the right.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace feio::cards {

enum class EditKind {
  kInt,    // Iw
  kFixed,  // Fw.d
  kExp,    // Ew.d
  kAlpha,  // Aw
  kSkip,   // nX
};

struct EditDescriptor {
  EditKind kind = EditKind::kSkip;
  int width = 0;     // field width (the skip count for nX)
  int decimals = 0;  // d for Fw.d / Ew.d
};

// A parsed FORMAT: descriptors in order with repeat counts expanded.
class Format {
 public:
  // Parses a FORMAT specification, with or without enclosing parentheses,
  // case-insensitive, ignoring blanks: "(2F9.5, 51X, I3, 5X, I3)".
  // Throws feio::Error on malformed input.
  static Format parse(std::string_view spec);

  const std::vector<EditDescriptor>& descriptors() const { return items_; }

  // Number of value-bearing descriptors (everything except nX).
  int field_count() const;

  // Total card columns consumed by one pass over the format.
  int record_width() const;

  // Canonical text form, e.g. "(2F9.5,51X,I3,5X,I3)" (repeats re-collapsed
  // only where adjacent descriptors are identical).
  std::string to_string() const;

 private:
  std::vector<EditDescriptor> items_;
};

// --- Field-level reading -------------------------------------------------

// Reads an integer from a fixed-width field. Blank => 0. Embedded blanks are
// ignored (FORTRAN treats them as zeros historically; modern decks do not
// rely on that, so we ignore them). Throws on non-numeric garbage.
long read_int_field(std::string_view field);

// Reads a real from a fixed-width field with implied decimal count `d`.
// Blank => 0.0. Accepts F and E forms. Throws on garbage.
double read_real_field(std::string_view field, int implied_decimals);

// --- Field-level writing -------------------------------------------------

// Whether a value can be written into its field without overflowing to
// asterisks. Exposed so punch and the lint FORMAT checker can predict
// overflow before a single corrupt card is emitted.
bool int_field_fits(long value, int width);
bool fixed_field_fits(double value, int width, int decimals);
bool exp_field_fits(double value, int width, int decimals);

// Right-justified integer in `width` columns; returns all asterisks when the
// value does not fit (FORTRAN overflow convention).
std::string write_int_field(long value, int width);

// Fw.d output; asterisks on overflow.
std::string write_fixed_field(double value, int width, int decimals);

// Ew.d output in the 0.dddE+ee style; asterisks on overflow.
std::string write_exp_field(double value, int width, int decimals);

// Aw output: left-justified, truncated to width.
std::string write_alpha_field(std::string_view value, int width);

}  // namespace feio::cards
