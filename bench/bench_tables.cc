// Tables 1 and 2: the numerical restrictions of OSPL and IDLZ.
//
// The 1970 limits were core-memory limits; this bench (a) verifies the
// library enforces them exactly as documented, and (b) runs both programs
// *at* their limits to show what a limit-sized 1970 job costs today.
#include <cstdio>
#include <vector>

#include <benchmark/benchmark.h>

#include "idlz/idlz.h"
#include "ospl/ospl.h"
#include "util/error.h"

using namespace feio;

namespace {

// An IDLZ case saturating Table 2: 496 nodes (<=500), 840 elements (<=850),
// inside the 40 x 60 integer grid, using 2 subdivisions.
idlz::IdlzCase table2_case() {
  idlz::IdlzCase c;
  c.title = "TABLE 2 CAPACITY CASE";
  idlz::Subdivision a;
  a.id = 1;
  a.k1 = 1; a.l1 = 1; a.k2 = 16; a.l2 = 16;
  idlz::Subdivision b;
  b.id = 2;
  b.k1 = 1; b.l1 = 16; b.k2 = 16; b.l2 = 29;  // 464 nodes, 840 elements
  c.subdivisions = {a, b};
  idlz::ShapingSpec sa;
  sa.subdivision_id = 1;
  sa.lines = {{1, 1, 16, 1, {0.0, 0.0}, {15.0, 0.0}, 0.0},
              {1, 16, 16, 16, {0.0, 15.0}, {15.0, 15.0}, 0.0}};
  idlz::ShapingSpec sb;
  sb.subdivision_id = 2;
  sb.lines = {{1, 29, 16, 29, {0.0, 28.0}, {15.0, 28.0}, 0.0}};
  c.shaping = {sa, sb};
  return c;
}

// An OSPL case saturating Table 1: 21x18 grid -> 418 nodes... use 24x16:
// (25)(17) = 425 nodes; elements 2*24*16 = 768. Closer: 39x12 grid ->
// 40*13 = 520 nodes, 936 elements. Max under (800, 1000): 27x17 ->
// 28*18=504, 918. Use 30x15 -> 31*16=496 nodes, 900 elements; then widen:
// 45x10 -> 46*11=506, 900. Simplest near-limit: 24x20 -> 525 nodes,
// 960 elements <= both limits.
ospl::OsplCase table1_case() {
  ospl::OsplCase c;
  const int nx = 24;
  const int ny = 20;
  for (int j = 0; j <= ny; ++j) {
    for (int i = 0; i <= nx; ++i) {
      c.mesh.add_node({static_cast<double>(i), static_cast<double>(j)});
      c.values.push_back(i * j * 0.37 + i);
    }
  }
  auto id = [nx](int i, int j) { return j * (nx + 1) + i; };
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      c.mesh.add_element(id(i, j), id(i + 1, j), id(i + 1, j + 1));
      c.mesh.add_element(id(i, j), id(i + 1, j + 1), id(i, j + 1));
    }
  }
  c.mesh.classify_boundary();
  c.title1 = "TABLE 1 CAPACITY CASE";
  return c;
}

void print_report() {
  std::printf("==== Table 2: IDLZ numerical restrictions ====\n");
  std::printf("%-44s %6s %s\n", "restriction", "paper", "enforced");
  const idlz::Limits lim;
  std::printf("%-44s %6d yes (throws beyond)\n",
              "total subdivisions", lim.max_subdivisions);
  std::printf("%-44s %6d yes (throws beyond)\n", "total elements",
              lim.max_elements);
  std::printf("%-44s %6d yes (throws beyond)\n", "total nodes",
              lim.max_nodes);
  std::printf("%-44s %6d yes (throws beyond)\n",
              "max horizontal integer coordinate", lim.max_k);
  std::printf("%-44s %6d yes (throws beyond)\n",
              "max vertical integer coordinate", lim.max_l);

  const idlz::IdlzResult r = idlz::run(table2_case());
  std::printf("capacity run: %d nodes, %d elements (at the limits)\n\n",
              r.mesh.num_nodes(), r.mesh.num_elements());

  std::printf("==== Table 1: OSPL numerical restrictions ====\n");
  const ospl::OsplLimits olim;
  std::printf("%-44s %6d yes (throws beyond)\n", "total elements allowed",
              olim.max_elements);
  std::printf("%-44s %6d yes (throws beyond)\n",
              "total nodes data may be given", olim.max_nodes);
  const ospl::OsplCase oc = table1_case();
  const ospl::OsplResult orr = ospl::run(oc);
  std::printf("capacity run: %d nodes, %d elements, %zu isogram segments\n\n",
              oc.mesh.num_nodes(), oc.mesh.num_elements(),
              orr.segments.size());
}

void BM_Table2CapacityIdlz(benchmark::State& state) {
  const idlz::IdlzCase c = table2_case();
  for (auto _ : state) {
    idlz::IdlzResult r = idlz::run(c);
    benchmark::DoNotOptimize(r.mesh.num_elements());
  }
  state.SetLabel("464 nodes / 840 elements (Table 2 limits)");
}
BENCHMARK(BM_Table2CapacityIdlz);

void BM_Table1CapacityOspl(benchmark::State& state) {
  const ospl::OsplCase c = table1_case();
  for (auto _ : state) {
    ospl::OsplResult r = ospl::run(c);
    benchmark::DoNotOptimize(r.segments.size());
  }
  state.SetLabel("525 nodes / 960 elements (Table 1 limits)");
}
BENCHMARK(BM_Table1CapacityOspl);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
