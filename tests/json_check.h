// Minimal JSON syntax validator for tests: accepts exactly one JSON value
// (object/array/string/number/true/false/null) spanning the whole input.
// Used to assert that DiagSink::render_json() and the CLI's --json output
// are machine-parseable without pulling in a JSON library dependency.
#pragma once

#include <cctype>
#include <string_view>

namespace json_check {
namespace detail {

struct Parser {
  std::string_view s;
  size_t pos = 0;
  int depth = 0;

  bool done() const { return pos >= s.size(); }
  char peek() const { return s[pos]; }

  void skip_ws() {
    while (!done() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                       peek() == '\r')) {
      ++pos;
    }
  }

  bool literal(std::string_view word) {
    if (s.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  bool string() {
    if (done() || peek() != '"') return false;
    ++pos;
    while (!done()) {
      const char c = s[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        if (done()) return false;
        const char e = s[pos++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (done() || !std::isxdigit(static_cast<unsigned char>(peek()))) {
              return false;
            }
            ++pos;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool digits() {
    if (done() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return false;
    }
    while (!done() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    return true;
  }

  bool number() {
    if (!done() && peek() == '-') ++pos;
    if (!digits()) return false;
    if (!done() && peek() == '.') {
      ++pos;
      if (!digits()) return false;
    }
    if (!done() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!done() && (peek() == '+' || peek() == '-')) ++pos;
      if (!digits()) return false;
    }
    return true;
  }

  bool value() {
    if (++depth > 64) return false;
    skip_ws();
    if (done()) return false;
    bool ok = false;
    switch (peek()) {
      case '{': {
        ++pos;
        skip_ws();
        if (!done() && peek() == '}') {
          ++pos;
          ok = true;
          break;
        }
        while (true) {
          skip_ws();
          if (!string()) return false;
          skip_ws();
          if (done() || s[pos++] != ':') return false;
          if (!value()) return false;
          skip_ws();
          if (done()) return false;
          const char c = s[pos++];
          if (c == '}') {
            ok = true;
            break;
          }
          if (c != ',') return false;
        }
        break;
      }
      case '[': {
        ++pos;
        skip_ws();
        if (!done() && peek() == ']') {
          ++pos;
          ok = true;
          break;
        }
        while (true) {
          if (!value()) return false;
          skip_ws();
          if (done()) return false;
          const char c = s[pos++];
          if (c == ']') {
            ok = true;
            break;
          }
          if (c != ',') return false;
        }
        break;
      }
      case '"':
        ok = string();
        break;
      case 't':
        ok = literal("true");
        break;
      case 'f':
        ok = literal("false");
        break;
      case 'n':
        ok = literal("null");
        break;
      default:
        ok = number();
    }
    --depth;
    return ok;
  }
};

}  // namespace detail

inline bool valid(std::string_view s) {
  detail::Parser p{s};
  if (!p.value()) return false;
  p.skip_ws();
  return p.done();
}

}  // namespace json_check
