#include "util/diag.h"

#include <cstdio>

#include "util/error.h"
#include "util/fault.h"
#include "util/metrics.h"
#include "util/report.h"

namespace feio {
namespace {

std::string plural(int n, const char* noun) {
  return std::to_string(n) + " " + noun + (n == 1 ? "" : "s");
}

}  // namespace

std::string_view severity_name(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "error";
}

std::string SourceLoc::to_string() const {
  std::string out;
  if (!deck.empty()) out = deck;
  if (card > 0) {
    if (!out.empty()) out += ": ";
    out += "card " + std::to_string(card);
    if (col_begin > 0) {
      out += ", cols " + std::to_string(col_begin);
      if (col_end > col_begin) out += "-" + std::to_string(col_end);
    }
  }
  return out;
}

std::string Diag::to_string() const {
  std::string out;
  const std::string where = loc.to_string();
  if (!where.empty()) out += where + ": ";
  out += std::string(severity_name(severity)) + " " + code + ": " + message;
  return out;
}

DiagSink::DiagSink(int cap) : cap_(cap < 1 ? 1 : cap) {}

void DiagSink::add(Diag d) {
  switch (d.severity) {
    case Severity::kError:
      FEIO_METRIC_ADD("diag.errors", 1);
      break;
    case Severity::kWarning:
      FEIO_METRIC_ADD("diag.warnings", 1);
      break;
    case Severity::kNote:
      FEIO_METRIC_ADD("diag.notes", 1);
      break;
  }
  append(std::move(d));
}

void DiagSink::append(Diag d) {
  ++counts_[static_cast<int>(d.severity)];
  if (static_cast<int>(diags_.size()) >= cap_) {
    capped_ = true;
    return;
  }
  diags_.push_back(std::move(d));
}

void DiagSink::error(std::string code, std::string message, SourceLoc loc) {
  add({Severity::kError, std::move(code), std::move(message), std::move(loc)});
}

void DiagSink::warning(std::string code, std::string message, SourceLoc loc) {
  add({Severity::kWarning, std::move(code), std::move(message),
       std::move(loc)});
}

void DiagSink::note(std::string code, std::string message, SourceLoc loc) {
  add({Severity::kNote, std::move(code), std::move(message), std::move(loc)});
}

int DiagSink::count(Severity s) const {
  return counts_[static_cast<int>(s)];
}

const Diag* DiagSink::first_error() const {
  for (const Diag& d : diags_) {
    if (d.severity == Severity::kError) return &d;
  }
  return nullptr;
}

void DiagSink::merge(const DiagSink& other) {
  int kept[3] = {0, 0, 0};
  // append(), not add(): the records were metered when first recorded, so a
  // merge must not count them into the metrics registry again.
  for (const Diag& d : other.diags_) {
    ++kept[static_cast<int>(d.severity)];
    append(d);
  }
  // Records the other sink dropped at its cap still deserve counting here.
  for (int s = 0; s < 3; ++s) counts_[s] += other.counts_[s] - kept[s];
  if (other.capped_) capped_ = true;
}

std::string DiagSink::render_text() const {
  std::string out;
  for (const Diag& d : diags_) {
    out += d.to_string();
    out += '\n';
  }
  const int ne = error_count();
  const int nw = warning_count();
  const int nn = count(Severity::kNote);
  if (ne == 0 && nw == 0 && nn == 0) {
    out += "no diagnostics.\n";
    return out;
  }
  std::string summary;
  if (ne > 0) summary += plural(ne, "error");
  if (nw > 0) summary += (summary.empty() ? "" : ", ") + plural(nw, "warning");
  if (nn > 0) summary += (summary.empty() ? "" : ", ") + plural(nn, "note");
  out += summary + ".";
  if (capped_) {
    out += " (report capped at " + std::to_string(cap_) + " diagnostics)";
  }
  out += '\n';
  return out;
}

std::string DiagSink::render_report_json(std::string_view kind) const {
  FEIO_FAULT("report.write");
  const std::string body = render_json();
  // render_json() always opens with "{\n"; splice the envelope members in
  // so the payload fields stay byte-for-byte what legacy consumers expect.
  return "{\n" + report_header_json(kind) + body.substr(2);
}

std::string DiagSink::render_json() const {
  std::string out = "{\n";
  out += std::string("  \"ok\": ") + (ok() ? "true" : "false") + ",\n";
  out += "  \"errors\": " + std::to_string(error_count()) + ",\n";
  out += "  \"warnings\": " + std::to_string(warning_count()) + ",\n";
  out += "  \"notes\": " + std::to_string(count(Severity::kNote)) + ",\n";
  out += std::string("  \"capped\": ") + (capped_ ? "true" : "false") + ",\n";
  out += "  \"diagnostics\": [";
  for (size_t i = 0; i < diags_.size(); ++i) {
    const Diag& d = diags_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"severity\": \"" + std::string(severity_name(d.severity)) +
           "\", \"code\": \"" + json_escape(d.code) + "\", \"message\": \"" +
           json_escape(d.message) + "\", \"deck\": \"" +
           json_escape(d.loc.deck) + "\", \"card\": " +
           std::to_string(d.loc.card) + ", \"colBegin\": " +
           std::to_string(d.loc.col_begin) + ", \"colEnd\": " +
           std::to_string(d.loc.col_end) + "}";
  }
  out += diags_.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

void DiagSink::throw_if_errors() const {
  const Diag* first = first_error();
  if (!first) return;
  std::string context;
  if (first->loc.card > 0) {
    context = "card " + std::to_string(first->loc.card);
  }
  throw Error(first->code + ": " + first->message, context);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace feio
