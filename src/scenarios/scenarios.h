// The paper's evaluation gallery: builders for every figure's idealization
// and, for the analysis figures (13-18), the full IDLZ -> FEM -> OSPL chain.
//
// The original report idealizes classified Navy hardware (DSSV/DSRV
// viewports and hatches, GRP cylinders, glass spheres) from drawings we do
// not have; each builder constructs a geometrically analogous cross-section
// that uses the same subdivision types, the same shaping devices (lines,
// compound arcs, degenerate triangle sides) and produces the same kind of
// plot. DESIGN.md records the substitution.
#pragma once

#include <string>
#include <vector>

#include "fem/material.h"
#include "idlz/idlz.h"

namespace feio::scenarios {

// ---- Idealization-only figures -----------------------------------------

idlz::IdlzCase fig02_rectangle();
// Figure 3: single-step trapezoids. sign = +1 / -1 (NTAPRW or NTAPCM).
idlz::IdlzCase fig03_trapezoid_row(int sign);
idlz::IdlzCase fig03_trapezoid_col(int sign);
// Figure 4: two-step trapezoids.
idlz::IdlzCase fig04_trapezoid_row(int sign);
idlz::IdlzCase fig04_trapezoid_col(int sign);
// Figure 5: NTAPCM = +3 fan.
idlz::IdlzCase fig05_trapezoid_col3();
// Figure 1 / 17: internally reinforced glass joint (trapezoid-graded).
idlz::IdlzCase fig01_glass_joint();
// Figure 6: glass viewport juncture with metal ring.
idlz::IdlzCase fig06_viewport_juncture();
// Figure 7: DSSV viewport (triangular subdivision bevel).
idlz::IdlzCase fig07_dssv_viewport();
// Figure 8: DSSV viewport and transition ring.
idlz::IdlzCase fig08_viewport_transition_ring();
// Figure 9: DSRV hatch (compound arcs; the 100-boundary-node claim).
idlz::IdlzCase fig09_dsrv_hatch();
// Figure 10: trapezoid shaped so element reform is necessary.
idlz::IdlzCase fig10_needle_trapezoid();
// Figure 11: circular ring (the three optional plot kinds).
idlz::IdlzCase fig11_circular_ring();
// Figure 14 geometry: half T-beam cross-section.
idlz::IdlzCase fig14_tee_beam();
// Figures 15/16 geometry: orthotropic cylinder with titanium end closure.
idlz::IdlzCase fig15_cylinder_closure(bool stiffened);
// Figure 18 geometry: hemispherical hatch of a glass sphere.
idlz::IdlzCase fig18_sphere_hatch();
// Plane-stress demonstration (the paper: "IDLZ and OSPL work equally as
// well with any plane stress or plane strain analysis program"): quarter
// plate with a circular hole, O-grid of two ring subdivisions.
idlz::IdlzCase kirsch_plate();

struct NamedCase {
  std::string id;     // e.g. "fig09"
  std::string what;   // paper caption, abbreviated
  idlz::IdlzCase c;
};
// Every idealization figure, for sweep-style tests and benches.
std::vector<NamedCase> all_idealizations();

// ---- Helpers ------------------------------------------------------------

// Node ids (into result.mesh) along one side of subdivision `sub_index`
// (index into c.subdivisions), in strip order. Works after renumbering.
std::vector<int> side_nodes(const idlz::IdlzCase& c,
                            const idlz::IdlzResult& r, int sub_index,
                            idlz::Side side);

// ---- Analysis figures (IDLZ -> FEM -> nodal fields) ---------------------

struct FieldOutput {
  std::string name;            // e.g. "EFFECTIVE STRESS"
  std::vector<double> values;  // one per node of `idlz.mesh`
  double suggested_delta = 0.0;  // 0 = automatic (Appendix D)
};

struct AnalysisOutput {
  std::string id;
  std::string title;
  idlz::IdlzResult idlz;
  std::vector<FieldOutput> fields;
  // Nodal displacements for the static analyses (empty for the thermal
  // chain); feeds plot::plot_deformed.
  std::vector<geom::Vec2> displacement;
};

// Figure 13: DSSV bottom hatch under external pressure -> effective stress.
AnalysisOutput fig13_analysis();
// Figure 13's caption reads "MODIFIED FOR CONTACT": the same hatch with the
// seat modelled as unilateral contact supports instead of fixed nodes. The
// extra field "SEAT REACTION" reports which rim nodes bear (value = nodal
// reaction, 0 = lifted off).
AnalysisOutput fig13_contact_analysis();
// Figure 14: T-beam under a thermal radiation pulse -> temperature at
// t = 2 s and t = 3 s.
AnalysisOutput fig14_analysis();
// Extension: the t = 2 s temperature field fed back as a thermal-strain
// load (the analysis the paper's Reference 3 temperatures exist to serve)
// -> effective thermal stress.
AnalysisOutput fig14_thermal_stress_analysis();
// Figure 15: stiffened GRP cylinder + titanium closure under external
// pressure -> circumferential and shear stress.
AnalysisOutput fig15_analysis();
// Figure 16: unstiffened variant -> effective and circumferential stress.
AnalysisOutput fig16_analysis();
// Figure 17: internally reinforced glass joint -> meridional and radial
// stress (normalized by the applied pressure).
AnalysisOutput fig17_analysis();
// Figure 18: glass-sphere hatch -> circumferential and effective stress.
AnalysisOutput fig18_analysis();
// Kirsch problem: remote tension on the holed plate -> sigma_x field whose
// concentration at the top of the hole approaches 3x the remote stress.
AnalysisOutput kirsch_analysis();

std::vector<AnalysisOutput> all_analyses();

}  // namespace feio::scenarios
