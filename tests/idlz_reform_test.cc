#include <gtest/gtest.h>

#include "idlz/idlz.h"
#include "idlz/reform.h"
#include "mesh/quality.h"
#include "mesh/validate.h"
#include "scenarios/scenarios.h"

namespace feio::idlz {
namespace {

using geom::Vec2;

// Quad with a bad diagonal: (0,0),(4,0),(4,1),(0,1) split through the long
// diagonal gives skinny triangles; the flip shortens it.
mesh::TriMesh bad_quad() {
  mesh::TriMesh m;
  m.add_node({0, 0});
  m.add_node({4, 0.5});
  m.add_node({8, 0});
  m.add_node({4, -0.5});
  // Diagonal 0-2 (long) instead of 1-3 (short).
  m.add_element(0, 2, 1);
  m.add_element(0, 3, 2);
  m.orient_ccw();
  return m;
}

TEST(FlipImprovesTest, DetectsBadDiagonal) {
  const mesh::TriMesh m = bad_quad();
  EXPECT_TRUE(flip_improves(m, 0, 1, 1e-9));
}

TEST(FlipImprovesTest, GoodDiagonalStays) {
  mesh::TriMesh m;
  m.add_node({0, 0});
  m.add_node({1, 0});
  m.add_node({1, 1});
  m.add_node({0, 1});
  m.add_element(0, 1, 2);
  m.add_element(0, 2, 3);
  // A square's diagonals are equivalent: no strict improvement.
  EXPECT_FALSE(flip_improves(m, 0, 1, 1e-9));
}

TEST(FlipImprovesTest, NonAdjacentElementsFalse) {
  mesh::TriMesh m;
  for (int i = 0; i < 6; ++i) {
    m.add_node({static_cast<double>(i % 3) + (i / 3) * 10.0,
                static_cast<double>(i / 3)});
  }
  m.add_element(0, 1, 2);
  m.add_element(3, 4, 5);
  EXPECT_FALSE(flip_improves(m, 0, 1, 1e-9));
}

TEST(ReformTest, FlipsBadQuad) {
  mesh::TriMesh m = bad_quad();
  const double before = mesh::summarize_quality(m).min_angle_rad;
  const ReformReport rep = reform(m);
  EXPECT_EQ(rep.flips, 1);
  EXPECT_TRUE(rep.converged);
  EXPECT_GT(mesh::summarize_quality(m).min_angle_rad, before);
  EXPECT_TRUE(mesh::validate(m).ok());
  // The new diagonal connects nodes 1 and 3.
  int diag13 = 0;
  for (int e = 0; e < 2; ++e) {
    const auto& n = m.element(e).n;
    const bool has1 = n[0] == 1 || n[1] == 1 || n[2] == 1;
    const bool has3 = n[0] == 3 || n[1] == 3 || n[2] == 3;
    if (has1 && has3) ++diag13;
  }
  EXPECT_EQ(diag13, 2);
}

TEST(ReformTest, PreservesCounts) {
  mesh::TriMesh m = bad_quad();
  reform(m);
  EXPECT_EQ(m.num_nodes(), 4);
  EXPECT_EQ(m.num_elements(), 2);
}

TEST(ReformTest, NoFlipsOnGoodMesh) {
  mesh::TriMesh m;
  m.add_node({0, 0});
  m.add_node({1, 0});
  m.add_node({0.5, 0.9});
  m.add_node({1.5, 0.9});
  m.add_element(0, 1, 2);
  m.add_element(1, 3, 2);
  const ReformReport rep = reform(m);
  EXPECT_EQ(rep.flips, 0);
  EXPECT_EQ(rep.passes, 1);
}

TEST(ReformTest, NonConvexQuadNeverFlipped) {
  mesh::TriMesh m;
  m.add_node({0, 0});
  m.add_node({4, 0});
  m.add_node({4, 4});
  m.add_node({3.2, 1.2});  // reflex vertex: quad 0-1-2-3 is non-convex
  m.add_element(0, 1, 3);
  m.add_element(1, 2, 3);
  m.orient_ccw();
  const ReformReport rep = reform(m);
  EXPECT_EQ(rep.flips, 0);
  EXPECT_TRUE(mesh::validate(m).ok());
}

TEST(ReformTest, Figure10NeedlesImprove) {
  // The paper's Figure 10: the skewed trapezoid's initial elements have
  // needle-like corners; reform removes the worst of them.
  IdlzCase c = scenarios::fig10_needle_trapezoid();
  c.options.reform_elements = false;
  const IdlzResult before = run(c);
  c.options.reform_elements = true;
  const IdlzResult after = run(c);

  const auto qb = mesh::summarize_quality(before.mesh);
  const auto qa = mesh::summarize_quality(after.mesh);
  EXPECT_GT(after.reform.flips, 0);
  // The apex corner's own angle is fixed by the boundary, so the worst
  // single element may not move; the population of needles does.
  EXPECT_GT(qa.mean_min_angle_rad, qb.mean_min_angle_rad);
  EXPECT_LE(qa.needle_count, qb.needle_count);
  EXPECT_GE(qa.min_angle_rad, qb.min_angle_rad - 1e-12);
  EXPECT_EQ(before.mesh.num_elements(), after.mesh.num_elements());
  EXPECT_TRUE(mesh::validate(after.mesh).ok());
}

TEST(ReformTest, Figure9HatchReformKeepsMeshValid) {
  const IdlzResult r = run(scenarios::fig09_dsrv_hatch());
  EXPECT_TRUE(r.reform.converged);
  EXPECT_TRUE(mesh::validate(r.mesh).ok());
  // Reform only ever improves the worst angle.
  EXPECT_GE(mesh::summarize_quality(r.mesh).min_angle_rad,
            mesh::summarize_quality(r.before_reform).min_angle_rad);
}

// Reform across the whole idealization gallery: never loses elements,
// never degrades the worst angle, always converges.
class ReformSweep : public ::testing::TestWithParam<int> {};

TEST_P(ReformSweep, MonotoneQuality) {
  const auto cases = scenarios::all_idealizations();
  const auto& nc = cases[static_cast<size_t>(GetParam())];
  const IdlzResult r = run(nc.c);
  EXPECT_TRUE(r.reform.converged) << nc.id;
  EXPECT_GE(mesh::summarize_quality(r.mesh).min_angle_rad,
            mesh::summarize_quality(r.before_reform).min_angle_rad - 1e-12)
      << nc.id;
  EXPECT_EQ(r.mesh.num_elements(), r.before_reform.num_elements()) << nc.id;
  EXPECT_TRUE(mesh::validate(r.mesh).ok()) << nc.id;
}

INSTANTIATE_TEST_SUITE_P(AllFigures, ReformSweep,
                         ::testing::Range(0, 22));

}  // namespace
}  // namespace feio::idlz
