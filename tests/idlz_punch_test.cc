// Punched-card output: the FORTRAN overflow convention, the E-PUNCH-001
// diagnosing overloads, and the field-fitting predicates they share with
// the lint FORMAT checker.
#include <string>

#include <gtest/gtest.h>

#include "cards/format.h"
#include "idlz/deck.h"
#include "idlz/idlz.h"
#include "idlz/punch.h"
#include "mesh/tri_mesh.h"
#include "util/diag.h"

namespace feio {
namespace {

mesh::TriMesh grid_mesh(int nx, int ny) {
  mesh::TriMesh m;
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      m.add_node({static_cast<double>(i), static_cast<double>(j)});
    }
  }
  for (int j = 0; j + 1 < ny; ++j) {
    for (int i = 0; i + 1 < nx; ++i) {
      const int a = j * nx + i;
      m.add_element(a, a + 1, a + nx);
      m.add_element(a + 1, a + nx + 1, a + nx);
    }
  }
  return m;
}

TEST(FieldFitsTest, IntFixedAndExp) {
  EXPECT_TRUE(cards::int_field_fits(99, 2));
  EXPECT_FALSE(cards::int_field_fits(100, 2));
  EXPECT_TRUE(cards::int_field_fits(-9, 2));
  EXPECT_FALSE(cards::int_field_fits(-10, 2));  // sign takes a column
  EXPECT_TRUE(cards::fixed_field_fits(1.5, 8, 4));
  EXPECT_FALSE(cards::fixed_field_fits(12345.0, 7, 4));
  EXPECT_TRUE(cards::exp_field_fits(1.5e10, 10, 3));
}

TEST(PunchDiagTest, ElementNumberOverflowIsOneRecordPerField) {
  // 11x11 grid: 121 nodes, 200 elements. I2 overflows both the node-number
  // fields (>99 nodes) and the element-number field.
  const mesh::TriMesh m = grid_mesh(11, 11);
  DiagSink sink;
  const SourceLoc loc{"deck.b", 16, 0, 0};
  const std::string cards_out =
      idlz::punch_element_cards(m, "(3I2,72X,I2)", sink, loc);
  EXPECT_FALSE(sink.ok());
  // One E-PUNCH-001 per overflowing field (4 fields, all overflow), not one
  // per corrupt card.
  EXPECT_EQ(sink.error_count(), 4);
  for (const Diag& d : sink.diags()) {
    EXPECT_EQ(d.code, "E-PUNCH-001");
    EXPECT_EQ(d.loc.card, 16);   // points at the type-7 FORMAT card
    EXPECT_EQ(d.loc.deck, "deck.b");
  }
  // The message names the first offending entity and the damage extent.
  const std::string report = sink.render_text();
  EXPECT_NE(report.find("element number 100"), std::string::npos) << report;
  EXPECT_NE(report.find("cards punched as asterisks"), std::string::npos);
  // Cards are still punched, overflow as asterisks (FORTRAN convention).
  EXPECT_NE(cards_out.find("**"), std::string::npos);
}

TEST(PunchDiagTest, NodalCoordinateOverflow) {
  mesh::TriMesh m;
  m.add_node({123456.0, 0.0});
  m.add_node({123457.0, 0.0});
  m.add_node({123456.0, 1.0});
  m.add_element(0, 1, 2);
  DiagSink sink;
  const std::string out =
      idlz::punch_nodal_cards(m, "(2F8.4,58X,I3,I3)", sink);
  EXPECT_FALSE(sink.ok());
  EXPECT_EQ(sink.error_count(), 1);  // only the X field overflows
  EXPECT_NE(sink.render_text().find("X coordinate"), std::string::npos)
      << sink.render_text();
  EXPECT_NE(out.find("********"), std::string::npos);
}

TEST(PunchDiagTest, CleanPunchAddsNoDiagnostics) {
  const mesh::TriMesh m = grid_mesh(3, 3);
  DiagSink sink;
  const std::string nodal = idlz::punch_nodal_cards(
      m, idlz::kDefaultNodalFormat, sink);
  const std::string element = idlz::punch_element_cards(
      m, idlz::kDefaultElementFormat, sink);
  EXPECT_TRUE(sink.empty()) << sink.render_text();
  // The diagnosing overloads punch the same cards as the legacy ones.
  EXPECT_EQ(nodal, idlz::punch_nodal_cards(m, idlz::kDefaultNodalFormat));
  EXPECT_EQ(element,
            idlz::punch_element_cards(m, idlz::kDefaultElementFormat));
}

TEST(PunchDiagTest, RunCheckedReportsPunchOverflow) {
  // A deck whose element FORMAT (I2) overflows at its own element count:
  // a 21x4 strip makes 120 elements. run_checked must surface E-PUNCH-001
  // with the FORMAT card's deck location instead of silently returning
  // corrupt card images.
  const std::string deck =
      "    1\n"
      "PUNCH OVERFLOW SET\n"
      "    0    0    1    1\n"
      "    1    1    1   21    4\n"
      "    1    2\n"
      "    1    1   21    1  0.0000  0.0000 20.0000  0.0000  0.0000\n"
      "    1    4   21    4  0.0000  3.0000 20.0000  3.0000  0.0000\n"
      "(2F9.5,51X,I3,5X,I3)\n"
      "(3I5,62X,I2)\n";
  DiagSink sink;
  const auto cases = idlz::read_deck_string(deck, sink, "punch.b");
  ASSERT_EQ(cases.size(), 1u);
  ASSERT_TRUE(sink.ok()) << sink.render_text();
  const auto r = idlz::run_checked(cases.front(), sink);
  ASSERT_TRUE(r.has_value()) << sink.render_text();
  EXPECT_EQ(r->mesh.num_elements(), 120);
  ASSERT_FALSE(sink.ok()) << "expected E-PUNCH-001";
  const Diag* punch = nullptr;
  for (const Diag& d : sink.diags()) {
    if (d.code == "E-PUNCH-001") punch = &d;
  }
  ASSERT_NE(punch, nullptr) << sink.render_text();
  EXPECT_EQ(punch->loc.deck, "punch.b");
  EXPECT_EQ(punch->loc.card, 9);  // the element FORMAT card
  // The element cards were still produced (asterisk-filled where overflown).
  EXPECT_NE(r->element_cards.find("**"), std::string::npos);
}

}  // namespace
}  // namespace feio
