#!/usr/bin/env python3
"""Cross-artifact invariant checker for the feio tree.

The 1970 paper's bargain — the machine proves the input deck consistent
before the batch run burns money — applied to this repository's own
artifacts. Five contracts span source, docs and tooling, and every one has
historically drifted in some codebase or other because nothing failed when
it did. This checker makes the drift fail, in ctest and in CI's
static-analysis job:

  fault-sites      FEIO_FAULT("site") call sites  <->  the registered-site
                   table in src/util/fault.cc  <->  the fault-site table in
                   docs/ROBUSTNESS.md (## Fault injection)
  error-codes      every [EWN]-XXX-NNN diagnostic code in the sources
                   (including "E-RES-00"-style prefix builders)  <->  the
                   catalog in docs/DIAGNOSTICS.md
  observability    span / counter / histogram name literals  <->  the
                   catalogs in docs/OBSERVABILITY.md (wildcard rows like
                   `lint.rules.*` must still match something real)
  schema-versions  feio.report/N and feio.bench.*/N version strings in the
                   sources  <->  the families tools/check_report.py accepts
  lint-rules       L-XXX-NNN rule ids in src/lint/registry.cc  <->  the rule
                   tables in docs/LINTS.md (and stray ids elsewhere under
                   src/lint/ must be registered)

Usage:
  check_invariants.py [--root DIR]            check the tree (exit 1 on drift)
  check_invariants.py --fix-docs [--root DIR] also print the missing doc rows
  check_invariants.py --self-test [--root DIR]
                   run every check against the seeded-violation fixture tree
                   (tests/invariants_fixtures/<check>/) and fail unless each
                   fixture trips its check — the checker checking itself.

Registering something new without tripping this: see docs/LINTS.md,
"Source-level invariants".
"""

import argparse
import os
import re
import sys

# --------------------------------------------------------------------------
# Scanning helpers.

SOURCE_EXTS = (".cc", ".h")


def source_files(root):
    """Every C++ file under src/ and tools/, sorted for stable output."""
    out = []
    for top in ("src", "tools"):
        base = os.path.join(root, top)
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    out.append(os.path.join(dirpath, name))
    return sorted(out)


def read(path):
    with open(path, encoding="utf-8") as f:
        return f.read()


def maybe_read(path):
    return read(path) if os.path.isfile(path) else ""


def rel(root, path):
    return os.path.relpath(path, root)


def scan(root, pattern):
    """(relpath, match) for every regex match in every source file."""
    rx = re.compile(pattern)
    hits = []
    for path in source_files(root):
        text = read(path)
        for m in rx.finditer(text):
            hits.append((rel(root, path), m.group(1)))
    return hits


def doc_section(text, heading):
    """The body of one '## heading...' section (to the next '## ' or EOF).

    The heading is matched as a prefix, so "Fault injection" finds
    "## Fault injection (`E-RES-006`)".
    """
    m = re.search(rf"^## {re.escape(heading)}[^\n]*$(.*?)(?=^## |\Z)",
                  text, re.M | re.S)
    return m.group(1) if m else ""


def table_cells(section, cell_index=0):
    """Backticked tokens from one cell of every data row in a section."""
    tokens = []
    for line in section.splitlines():
        line = line.strip()
        if not line.startswith("|"):
            continue
        cells = [c.strip() for c in line.strip("|").split("|")]
        if cell_index >= len(cells):
            continue
        cell = cells[cell_index]
        if set(cell) <= {"-", " ", ":"}:  # the |---|---| separator row
            continue
        tokens.extend(re.findall(r"`([^`]+)`", cell))
    return tokens


class Violation:
    def __init__(self, check, message, doc=None, fix_row=None):
        self.check = check
        self.message = message
        self.doc = doc          # doc file a --fix-docs row belongs in
        self.fix_row = fix_row  # suggested markdown table row, or None


# --------------------------------------------------------------------------
# Check 1: fault sites.

def check_fault_sites(root):
    v = []
    calls = scan(root, r'FEIO_FAULT\(\s*"([^"]+)"')
    call_sites = {site for _p, site in calls}

    fault_cc = maybe_read(os.path.join(root, "src", "util", "fault.cc"))
    m = re.search(r"kSites\s*=\s*\{(.*?)\};", fault_cc, re.S)
    registry = re.findall(r'"([^"]+)"', m.group(1)) if m else []
    reg_set = set(registry)

    robustness = maybe_read(os.path.join(root, "docs", "ROBUSTNESS.md"))
    documented = set(table_cells(doc_section(robustness, "Fault injection")))

    for path, site in sorted(set(calls)):
        if site not in reg_set:
            v.append(Violation(
                "fault-sites",
                f'FEIO_FAULT("{site}") at {path} is not in the kSites '
                "registry in src/util/fault.cc"))
    for site in sorted(reg_set - call_sites):
        v.append(Violation(
            "fault-sites",
            f'registered fault site "{site}" has no FEIO_FAULT call site'))
    for site in sorted(reg_set - documented):
        v.append(Violation(
            "fault-sites",
            f'fault site "{site}" is missing from the docs/ROBUSTNESS.md '
            "fault-injection table",
            doc="docs/ROBUSTNESS.md",
            fix_row=f"| `{site}` | TODO: what this site interrupts |"))
    for site in sorted(documented - reg_set):
        v.append(Violation(
            "fault-sites",
            f'docs/ROBUSTNESS.md documents fault site "{site}" which is not '
            "registered in src/util/fault.cc"))
    if registry != sorted(registry):
        v.append(Violation(
            "fault-sites",
            "the kSites registry in src/util/fault.cc is not sorted"))
    return v


# --------------------------------------------------------------------------
# Check 2: diagnostic codes.

CODE_RX = r"\b([EWN]-[A-Z]+-[0-9]{3})\b"
# A quoted string that is nothing but a truncated code: a prefix builder
# ("E-RES-00" + classification logic). Requires at least one documented
# expansion, else the branch it feeds is dead.
PREFIX_RX = r'"([EWN]-[A-Z]+-[0-9]{1,2})"'


def check_error_codes(root):
    v = []
    used = scan(root, CODE_RX)
    prefixes = scan(root, PREFIX_RX)

    diagnostics = maybe_read(os.path.join(root, "docs", "DIAGNOSTICS.md"))
    documented = set(re.findall(CODE_RX, diagnostics))

    for path, code in sorted(set(used)):
        if code not in documented:
            v.append(Violation(
                "error-codes",
                f"diagnostic code {code} ({path}) is not cataloged in "
                "docs/DIAGNOSTICS.md",
                doc="docs/DIAGNOSTICS.md",
                fix_row=f"| `{code}` | error | TODO: what this code means. |"))
    for path, prefix in sorted(set(prefixes)):
        if not any(code.startswith(prefix) for code in documented):
            v.append(Violation(
                "error-codes",
                f'code-prefix builder "{prefix}" ({path}) matches no '
                "documented code in docs/DIAGNOSTICS.md",
                doc="docs/DIAGNOSTICS.md",
                fix_row=f"| `{prefix}1` | error | TODO: the {prefix}x "
                        "family. |"))

    # Codes advertised in the README must exist in the catalog (the catalog
    # itself may legitimately document codes no longer emitted verbatim --
    # the E-RES family is constructed -- so the reverse direction is only
    # checked against prefixes).
    readme_codes = set(re.findall(CODE_RX,
                                  maybe_read(os.path.join(root, "README.md"))))
    for code in sorted(readme_codes - documented):
        v.append(Violation(
            "error-codes",
            f"README.md mentions {code}, which docs/DIAGNOSTICS.md does not "
            "catalog"))

    emitted = {code for _p, code in used}
    prefix_set = {p for _p, p in prefixes}
    for code in sorted(documented - emitted):
        if not any(code.startswith(p) for p in prefix_set):
            v.append(Violation(
                "error-codes",
                f"docs/DIAGNOSTICS.md catalogs {code}, which no source file "
                "emits or matches via a prefix builder"))
    return v


# --------------------------------------------------------------------------
# Check 3: observability names.

SPAN_PATTERNS = (
    r'FEIO_TRACE_SPAN\(\s*\w+\s*,\s*"([^"]+)"',
    r'FEIO_TRACE_SCOPE\(\s*"([^"]+)"',
    # lint's rule-family spans are opened through a wrapper class, not the
    # macro; the doc catalogs them under the `lint.rules.*` wildcard.
    r'RuleFamilyScope\s+\w+\s*\(\s*"([^"]+)"',
)


def names_match(doc_name, source_names):
    """A doc entry matches exactly, or as a trailing-`.*` wildcard."""
    if doc_name.endswith(".*"):
        prefix = doc_name[:-1]  # keep the trailing dot
        return any(s.startswith(prefix) for s in source_names)
    return doc_name in source_names


def doc_entry_for(source_name, doc_names):
    return any(
        (d.endswith(".*") and source_name.startswith(d[:-1])) or
        d == source_name
        for d in doc_names)


def check_observability(root):
    v = []
    spans = []
    for pattern in SPAN_PATTERNS:
        spans.extend(scan(root, pattern))
    counters = scan(root, r'FEIO_METRIC_ADD\(\s*"([^"]+)"')
    # Dynamic counters (FEIO_METRIC_ADD_DYN) take a literal name prefix plus
    # a runtime suffix; the captured prefix is what a `prefix.*` wildcard row
    # in the catalog documents.
    counters.extend(scan(root, r'FEIO_METRIC_ADD_DYN\(\s*"([^"]+)"'))
    histograms = scan(root, r'FEIO_METRIC_RECORD\(\s*"([^"]+)"')

    observability = maybe_read(os.path.join(root, "docs", "OBSERVABILITY.md"))
    doc_spans = set(table_cells(doc_section(observability, "Span catalog")))
    metric_section = doc_section(observability, "Metric catalog")
    split = metric_section.find("Histograms")
    doc_counters = set(table_cells(metric_section[:split]))
    doc_histograms = set(table_cells(metric_section[split:])) if split >= 0 \
        else set()

    kinds = (
        ("span", spans, doc_spans),
        ("counter", counters, doc_counters),
        ("histogram", histograms, doc_histograms),
    )
    for kind, hits, doc_names in kinds:
        source_names = {name for _p, name in hits}
        for path, name in sorted(set(hits)):
            if not doc_entry_for(name, doc_names):
                v.append(Violation(
                    "observability",
                    f'{kind} "{name}" ({path}) is missing from the '
                    "docs/OBSERVABILITY.md catalog",
                    doc="docs/OBSERVABILITY.md",
                    fix_row=f"| `{name}` | TODO: what this {kind} covers |"))
        for doc_name in sorted(doc_names):
            if not names_match(doc_name, source_names):
                v.append(Violation(
                    "observability",
                    f'docs/OBSERVABILITY.md catalogs {kind} "{doc_name}", '
                    "which no source file emits"))
    return v


# --------------------------------------------------------------------------
# Check 4: schema version strings.

SCHEMA_RX = r"\b(feio\.(?:report|bench\.[a-z_]+)/[0-9]+)\b"


def check_schemas(root):
    v = []
    used = scan(root, SCHEMA_RX)
    source_schemas = {s for _p, s in used}
    validator = maybe_read(os.path.join(root, "tools", "check_report.py"))
    accepted = set(re.findall(SCHEMA_RX, validator))

    for path, schema in sorted(set(used)):
        if schema not in accepted:
            v.append(Violation(
                "schema-versions",
                f'schema "{schema}" ({path}) is not accepted by '
                "tools/check_report.py"))
    for schema in sorted(accepted - source_schemas):
        v.append(Violation(
            "schema-versions",
            f'tools/check_report.py accepts schema "{schema}", which no '
            "source file emits"))
    return v


# --------------------------------------------------------------------------
# Check 5: lint rule ids.

LINT_RX = r"\b(L-[A-Z]+-[0-9]{3})\b"


def check_lint_rules(root):
    v = []
    registry_path = os.path.join(root, "src", "lint", "registry.cc")
    registered = set(re.findall(r'\{"(L-[A-Z]+-[0-9]{3})"',
                                maybe_read(registry_path)))
    documented = set(re.findall(LINT_RX,
                                maybe_read(os.path.join(root, "docs",
                                                        "LINTS.md"))))

    for rule in sorted(registered - documented):
        v.append(Violation(
            "lint-rules",
            f"lint rule {rule} (src/lint/registry.cc) is missing from "
            "docs/LINTS.md",
            doc="docs/LINTS.md",
            fix_row=f"| `{rule}` | error | TODO: what this rule checks. | "
                    "TODO: example |"))
    for rule in sorted(documented - registered):
        v.append(Violation(
            "lint-rules",
            f"docs/LINTS.md documents lint rule {rule}, which is not in "
            "src/lint/registry.cc"))

    # Stray ids: any L-code referenced under src/lint/ must be registered.
    lint_dir = os.path.join(root, "src", "lint")
    if os.path.isdir(lint_dir):
        for name in sorted(os.listdir(lint_dir)):
            if not name.endswith(SOURCE_EXTS):
                continue
            path = os.path.join(lint_dir, name)
            for rule in sorted(set(re.findall(LINT_RX, read(path)))):
                if rule not in registered:
                    v.append(Violation(
                        "lint-rules",
                        f"lint rule {rule} ({rel(root, path)}) is not in "
                        "src/lint/registry.cc"))
    return v


# --------------------------------------------------------------------------
# Driver.

CHECKS = {
    "fault-sites": check_fault_sites,
    "error-codes": check_error_codes,
    "observability": check_observability,
    "schema-versions": check_schemas,
    "lint-rules": check_lint_rules,
}

# Fixture directory name -> the check its seeded violation must trip.
FIXTURE_CHECKS = {
    "cache_counter": "observability",
    "fault_site": "fault-sites",
    "error_code": "error-codes",
    "span_name": "observability",
    "schema_version": "schema-versions",
    "lint_rule": "lint-rules",
}


def run_checks(root, only=None):
    violations = []
    for name, check in CHECKS.items():
        if only is not None and name != only:
            continue
        violations.extend(check(root))
    return violations


def report(violations, fix_docs):
    for viol in violations:
        print(f"DRIFT [{viol.check}] {viol.message}")
    if fix_docs:
        by_doc = {}
        for viol in violations:
            if viol.fix_row:
                by_doc.setdefault(viol.doc, []).append(viol.fix_row)
        for doc in sorted(by_doc):
            print(f"\n--fix-docs: suggested rows for {doc}:")
            for row in by_doc[doc]:
                print(f"  {row}")
    n = len(violations)
    print(f"check_invariants: {n} violation{'s' if n != 1 else ''}")


def self_test(root, fixtures):
    """Each fixture seeds one violation class; its check must catch it."""
    ok = True
    for name in sorted(FIXTURE_CHECKS):
        fixture_root = os.path.join(fixtures, name)
        check = FIXTURE_CHECKS[name]
        if not os.path.isdir(fixture_root):
            print(f"SELF-TEST FAIL {name}: fixture directory missing "
                  f"({fixture_root})")
            ok = False
            continue
        violations = run_checks(fixture_root, only=check)
        if violations:
            print(f"self-test ok   {name}: [{check}] caught "
                  f"{len(violations)} seeded violation(s)")
        else:
            print(f"SELF-TEST FAIL {name}: [{check}] caught nothing in "
                  f"{fixture_root}")
            ok = False
    return ok


def main():
    parser = argparse.ArgumentParser(
        description="feio cross-artifact invariant checker")
    parser.add_argument("--root", default=None,
                        help="repository root (default: the checker's "
                             "grandparent directory)")
    parser.add_argument("--fix-docs", action="store_true",
                        help="dry run: also print the missing doc table rows")
    parser.add_argument("--self-test", action="store_true",
                        help="run against the seeded-violation fixtures")
    parser.add_argument("--fixtures", default=None,
                        help="fixture tree for --self-test "
                             "(default: ROOT/tests/invariants_fixtures)")
    args = parser.parse_args()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if args.self_test:
        fixtures = args.fixtures or os.path.join(root, "tests",
                                                 "invariants_fixtures")
        sys.exit(0 if self_test(root, fixtures) else 1)

    violations = run_checks(root)
    report(violations, args.fix_docs)
    sys.exit(1 if violations else 0)


if __name__ == "__main__":
    main()
