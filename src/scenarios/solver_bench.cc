#include "scenarios/solver_bench.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <sstream>
#include <utility>

#include "fem/skyline.h"
#include "fem/solver.h"
#include "idlz/assembler.h"
#include "idlz/renumber.h"
#include "idlz/shaping.h"
#include "mesh/bandwidth.h"
#include "scenarios/pipeline_bench.h"
#include "util/diag.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/report.h"

namespace feio::scenarios {
namespace {

using Clock = std::chrono::steady_clock;

// Cells over these caps are reported as skipped instead of run: a
// pathological ordering (Hilbert on a long anisotropic domain) pushes the
// half-bandwidth — or the envelope itself — toward n, and timing a
// hundred-gigabyte or hours-of-flops factor teaches nothing the byte
// counts don't already say. The flop model is n * (hbw+1)^2 for the band
// and the exact sum of squared column heights for the skyline.
constexpr std::int64_t kStorageBytesCap = std::int64_t{2} << 30;
constexpr std::int64_t kFlopsCapQuick = 200'000'000;        // ~0.1 s
constexpr std::int64_t kFlopsCapFull = 25'000'000'000;      // ~15 s

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

template <typename Fn>
double time_min_ms(int reps, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const Clock::time_point start = Clock::now();
    fn();
    best = std::min(best, ms_since(start));
  }
  return best;
}

// Bit-exact fingerprint of a double vector: two runs are byte-identical
// iff their fingerprints match (hex of the raw bits, not a rounding).
std::string bits_fingerprint(const std::vector<double>& v) {
  std::ostringstream out;
  char buf[20];
  for (double x : v) {
    std::snprintf(buf, sizeof buf, "%016llx;",
                  static_cast<unsigned long long>(
                      std::bit_cast<std::uint64_t>(x)));
    out << buf;
  }
  return out.str();
}

// A bench mesh in generation order — the "none" ordering is whatever order
// the generator emitted nodes in (row-major for both families here).
struct BenchMesh {
  std::string tag;
  mesh::TriMesh mesh;
};

mesh::TriMesh strip_mesh(int k_cells, int l_cells, int subs) {
  const idlz::IdlzCase c = strip_case(k_cells, l_cells, subs);
  idlz::Assembly a =
      idlz::assemble(c.subdivisions, c.options.limits, c.options.diagonals);
  idlz::shape(c.subdivisions, c.shaping, a, c.options.limits);
  return std::move(a.mesh);
}

// The Fig. 9-class geometry the skyline path exists for: a 64-cell-wide
// plate, solid for `rim` cell rows at the bottom and top, with two big
// rectangular slots between leaving three 4-cell-wide vertical webs. Most
// node rows hold only the 15 web nodes (short skyline columns), while the
// full-width rim rows pin the banded half-bandwidth near the plate width —
// the band pays the worst row everywhere, the envelope only where it must.
// Nodes are emitted row-major (y outer, x ascending), unit cells.
mesh::TriMesh plate_with_holes(int rows) {
  constexpr int kWidth = 64;  // cells across
  constexpr int kRim = 2;     // solid cell rows at bottom and top
  auto in_web = [&](int x) {
    return (x >= 0 && x < 4) || (x >= 30 && x < 34) || (x >= 60 && x < 64);
  };
  auto solid_cell = [&](int x, int y) {
    if (y < kRim || y >= rows - kRim) return true;
    return in_web(x);
  };

  mesh::TriMesh m;
  // node_id[y][x], -1 when the corner touches no solid cell.
  std::vector<std::vector<int>> node_id(
      static_cast<std::size_t>(rows + 1),
      std::vector<int>(static_cast<std::size_t>(kWidth + 1), -1));
  auto corner_used = [&](int x, int y) {
    for (int dy = -1; dy <= 0; ++dy) {
      for (int dx = -1; dx <= 0; ++dx) {
        const int cx = x + dx;
        const int cy = y + dy;
        if (cx < 0 || cx >= kWidth || cy < 0 || cy >= rows) continue;
        if (solid_cell(cx, cy)) return true;
      }
    }
    return false;
  };
  for (int y = 0; y <= rows; ++y) {
    for (int x = 0; x <= kWidth; ++x) {
      if (corner_used(x, y)) {
        node_id[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] =
            m.add_node({static_cast<double>(x), static_cast<double>(y)});
      }
    }
  }
  for (int y = 0; y < rows; ++y) {
    for (int x = 0; x < kWidth; ++x) {
      if (!solid_cell(x, y)) continue;
      const int a = node_id[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)];
      const int b = node_id[static_cast<std::size_t>(y)][static_cast<std::size_t>(x + 1)];
      const int c = node_id[static_cast<std::size_t>(y + 1)][static_cast<std::size_t>(x + 1)];
      const int d = node_id[static_cast<std::size_t>(y + 1)][static_cast<std::size_t>(x)];
      m.add_element(a, b, c);
      m.add_element(a, c, d);
    }
  }
  return m;
}

std::vector<BenchMesh> bench_meshes(bool quick) {
  std::vector<BenchMesh> meshes;
  if (quick) {
    meshes.push_back({"strip16x60", strip_mesh(16, 60, 6)});
    meshes.push_back({"plate_holes96", plate_with_holes(96)});
  } else {
    meshes.push_back({"strip32x312", strip_mesh(32, 312, 8)});
    meshes.push_back({"strip48x400", strip_mesh(48, 400, 8)});
    meshes.push_back({"plate_holes1000", plate_with_holes(1000)});
    // ~990k dofs: the "up to 10^6" point. The banded factor here is ~1 GB
    // and ~18e9 flops under none/RCM — just inside the caps, so the 2x
    // claim is measured at full scale; the Hilbert cells (band and
    // envelope both pathological on this anisotropic domain) skip.
    meshes.push_back({"plate_holes33000", plate_with_holes(33000)});
  }
  return meshes;
}

// Bottom edge clamped, transverse point load at the top-most (then
// right-most) node: the cantilever boundary conditions the v1 harness used,
// generalized to any of the bench meshes.
fem::StaticProblem make_problem(const mesh::TriMesh& mesh) {
  fem::StaticProblem prob(mesh, fem::Analysis::kPlaneStress);
  prob.set_material(fem::Material::isotropic(30.0e6, 0.30));
  double y_min = std::numeric_limits<double>::infinity();
  for (int n = 0; n < mesh.num_nodes(); ++n) {
    y_min = std::min(y_min, mesh.pos(n).y);
  }
  int tip = 0;
  for (int n = 0; n < mesh.num_nodes(); ++n) {
    if (mesh.pos(n).y < y_min + 0.5) prob.fix(n, true, true);
    if (mesh.pos(n).y > mesh.pos(tip).y ||
        (mesh.pos(n).y == mesh.pos(tip).y &&
         mesh.pos(n).x > mesh.pos(tip).x)) {
      tip = n;
    }
  }
  prob.point_load(tip, {1000.0, -500.0});
  return prob;
}

struct Measurement {
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  bool identical = false;
};

// `work` must be a pure function of the process-default thread count and
// return a bit-exact fingerprint of its result.
template <typename Fn>
Measurement measure(int reps, int threads, Fn&& work) {
  Measurement m;
  std::string serial_fp;
  std::string parallel_fp;
  {
    util::ScopedThreads guard(1);
    serial_fp = work();  // warm-up + fingerprint
    m.serial_ms = time_min_ms(reps, [&] { work(); });
  }
  {
    util::ScopedThreads guard(threads);
    parallel_fp = work();
    m.parallel_ms = time_min_ms(reps, [&] { work(); });
  }
  m.identical = serial_fp == parallel_fp;
  return m;
}

const char* ordering_name(feio::OrderingChoice o) {
  switch (o) {
    case feio::OrderingChoice::kNone:
      return "none";
    case feio::OrderingChoice::kRcm:
      return "rcm";
    case feio::OrderingChoice::kHilbert:
      return "hilbert";
    case feio::OrderingChoice::kDeckDefault:
      break;
  }
  return "deck";
}

}  // namespace

bool SolverBenchReport::all_identical() const {
  return std::all_of(cases.begin(), cases.end(),
                     [](const SolverBenchCase& c) { return c.identical; });
}

std::string SolverBenchReport::render_json() const {
  std::ostringstream out;
  out.precision(6);
  out << std::fixed;
  out << "{\n";
  out << report_header_json("bench");
  out << "  \"payload_schema\": \"feio.bench.solver/2\",\n";
  out << "  \"hardware_threads\": " << hardware_threads << ",\n";
  out << "  \"threads\": " << threads << ",\n";
  out << "  \"repetitions\": " << repetitions << ",\n";
  out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  out << "  \"all_identical\": " << (all_identical() ? "true" : "false")
      << ",\n";
  out << "  \"cases\": [";
  for (size_t i = 0; i < cases.size(); ++i) {
    const SolverBenchCase& c = cases[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"name\": \"" << json_escape(c.name) << "\", \"stage\": \""
        << json_escape(c.stage) << "\", \"mesh\": \"" << json_escape(c.mesh)
        << "\", \"ordering\": \"" << json_escape(c.ordering)
        << "\", \"storage\": \"" << json_escape(c.storage)
        << "\", \"auto_storage\": \"" << json_escape(c.auto_storage)
        << "\", \"n\": " << c.n << ", \"half_bandwidth\": " << c.half_bandwidth
        << ", \"node_bw\": " << c.node_bw
        << ", \"band_bytes\": " << c.band_bytes
        << ", \"skyline_bytes\": " << c.skyline_bytes
        << ", \"serial_ms\": " << c.serial_ms
        << ", \"parallel_ms\": " << c.parallel_ms
        << ", \"speedup\": " << c.speedup
        << ", \"identical\": " << (c.identical ? "true" : "false")
        << ", \"skipped\": " << (c.skipped ? "true" : "false") << "}";
  }
  out << (cases.empty() ? "],\n" : "\n  ],\n");
  if (metrics_json.empty()) {
    out << "  \"metrics\": {}\n";
  } else {
    out << "  \"metrics\": {\n" << metrics_json << "  }\n";
  }
  out << "}\n";
  return out.str();
}

std::string SolverBenchReport::render_table() const {
  std::ostringstream out;
  out << "bench_solver: " << threads << " threads (" << hardware_threads
      << " hardware), min of " << repetitions << " reps\n";
  out << "  case                                            n   hbw   auto"
         "     serial ms  parallel ms  speedup  identical\n";
  for (const SolverBenchCase& c : cases) {
    out << "  " << c.name;
    for (size_t pad = c.name.size(); pad < 44; ++pad) out << ' ';
    if (c.skipped) {
      char row[120];
      std::snprintf(row, sizeof row,
                    "%9d %5d  %-7s  skipped (%s over harness cap; "
                    "%lld bytes)\n",
                    c.n, c.half_bandwidth, c.auto_storage.c_str(),
                    c.storage.c_str(),
                    static_cast<long long>(c.storage == "banded"
                                               ? c.band_bytes
                                               : c.skyline_bytes));
      out << row;
      continue;
    }
    char row[120];
    std::snprintf(row, sizeof row,
                  "%9d %5d  %-7s %10.3f  %11.3f  %6.2fx  %s\n", c.n,
                  c.half_bandwidth, c.auto_storage.c_str(), c.serial_ms,
                  c.parallel_ms, c.speedup, c.identical ? "yes" : "NO");
    out << row;
  }
  return out.str();
}

SolverBenchReport run_solver_bench(int threads, bool quick) {
  SolverBenchReport report;
  report.hardware_threads = util::hardware_threads();
  report.threads = threads <= 0 ? report.hardware_threads : threads;
  report.quick = quick;
  report.repetitions = quick ? 2 : 3;

  const feio::OrderingChoice orderings[] = {feio::OrderingChoice::kNone,
                                            feio::OrderingChoice::kRcm,
                                            feio::OrderingChoice::kHilbert};

  for (BenchMesh& bm : bench_meshes(quick)) {
    for (const feio::OrderingChoice ordering : orderings) {
      mesh::TriMesh m = bm.mesh;
      if (ordering == feio::OrderingChoice::kRcm) {
        m.renumber_nodes(idlz::cuthill_mckee_permutation(m, /*reverse=*/true));
      } else if (ordering == feio::OrderingChoice::kHilbert) {
        m.renumber_nodes(idlz::hilbert_permutation(m));
      }
      const fem::StaticProblem prob = make_problem(m);
      const fem::StoragePrediction pred = fem::predict_storage(prob);
      const int n = prob.num_dofs();
      const int hbw = prob.dof_half_bandwidth();
      const int node_bw = mesh::bandwidth(m);
      const char* oname = ordering_name(ordering);
      const char* auto_name = pred.use_skyline ? "skyline" : "banded";
      // Big systems repeat once: the factor dominates and the min-of-reps
      // guard matters less than the wall-clock budget.
      const int reps = n > 200000 ? 1 : report.repetitions;

      auto push = [&](const char* stage, const char* storage,
                      const Measurement& meas, bool skipped) {
        SolverBenchCase c;
        c.name = std::string(stage) + "/" + bm.tag + "/" + oname + "/" +
                 storage;
        c.stage = stage;
        c.mesh = bm.tag;
        c.ordering = oname;
        c.storage = storage;
        c.auto_storage = auto_name;
        c.n = n;
        c.half_bandwidth = hbw;
        c.node_bw = node_bw;
        c.band_bytes = pred.band_bytes;
        c.skyline_bytes = pred.skyline_bytes;
        c.serial_ms = meas.serial_ms;
        c.parallel_ms = meas.parallel_ms;
        c.speedup = skipped ? 0.0
                            : meas.serial_ms /
                                  std::max(meas.parallel_ms, 1e-9);
        c.identical = skipped ? true : meas.identical;
        c.skipped = skipped;
        report.cases.push_back(std::move(c));
      };

      const std::int64_t flops_cap = quick ? kFlopsCapQuick : kFlopsCapFull;
      const std::int64_t band_flops =
          static_cast<std::int64_t>(n) * (hbw + 1) * (hbw + 1);
      const bool band_fits =
          pred.band_bytes <= kStorageBytesCap && band_flops <= flops_cap;

      const std::vector<int> lows = prob.dof_skyline_lows();
      std::int64_t sky_flops = 0;
      for (int i = 0; i < n; ++i) {
        const std::int64_t h = i - lows[static_cast<std::size_t>(i)] + 1;
        sky_flops += h * h;
      }
      const bool sky_fits =
          pred.skyline_bytes <= kStorageBytesCap && sky_flops <= flops_cap;

      // Stage 1: parallel element assembly into each storage. The skyline
      // envelope comes from the problem's exact dof column lows.
      if (band_fits) {
        const Measurement meas = measure(reps, report.threads, [&] {
          fem::BandedMatrix k(n, hbw);
          std::vector<double> rhs;
          prob.assemble(k, rhs);
          return bits_fingerprint(rhs);
        });
        push("assemble", "banded", meas, false);
      } else {
        push("assemble", "banded", {}, true);
      }
      if (sky_fits) {
        const Measurement meas = measure(reps, report.threads, [&] {
          fem::SkylineMatrix k(lows);
          std::vector<double> rhs;
          prob.assemble(k, rhs);
          return bits_fingerprint(rhs);
        });
        push("assemble", "skyline", meas, false);
      } else {
        push("assemble", "skyline", {}, true);
      }

      // Stage 2: blocked factorize + solve. Assembly runs outside the
      // timed lambda: each rep factorizes a fresh copy.
      if (band_fits) {
        fem::BandedMatrix k0(n, hbw);
        std::vector<double> rhs0;
        prob.assemble(k0, rhs0);
        const Measurement meas = measure(reps, report.threads, [&] {
          fem::BandedMatrix k = k0;
          std::vector<double> rhs = rhs0;
          k.factorize();
          k.solve(rhs);
          return bits_fingerprint(rhs);
        });
        push("factor_solve", "banded", meas, false);
      } else {
        push("factor_solve", "banded", {}, true);
      }
      if (sky_fits) {
        fem::SkylineMatrix k0(lows);
        std::vector<double> rhs0;
        prob.assemble(k0, rhs0);
        const Measurement meas = measure(reps, report.threads, [&] {
          fem::SkylineMatrix k = k0;
          std::vector<double> rhs = rhs0;
          k.factorize();
          k.solve(rhs);
          return bits_fingerprint(rhs);
        });
        push("factor_solve", "skyline", meas, false);
      } else {
        push("factor_solve", "skyline", {}, true);
      }
    }
  }

  // One metered kAuto solve of the plate mesh outside the timed loops
  // supplies the metrics snapshot: the fem.solver.storage.* selection
  // counters, fem.factorize.panels, fem.static_solves, parallel.*.
  {
    const mesh::TriMesh m = quick ? plate_with_holes(96) : plate_with_holes(400);
    util::MetricsRegistry metrics;
    RunOptions opts;
    opts.threads = report.threads;
    opts.metrics = &metrics;
    fem::solve(make_problem(m), opts);
    report.metrics_json = metrics.render_body_json(4);
  }

  return report;
}

}  // namespace feio::scenarios
