# Empty dependencies file for fem_contact_test.
# This may be replaced when dependencies are built.
