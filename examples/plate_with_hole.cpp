// Plane-stress demonstration: the Kirsch plate.
//
// The paper notes that "while only axisymmetric problems have been shown
// here, IDLZ and OSPL work equally as well with any plane stress or plane
// strain analysis program." This example makes that concrete on the
// classic benchmark with a known answer: a plate with a circular hole
// under remote tension concentrates stress by a factor of 3 at the hole.
//
// Outputs: out/kirsch_mesh.svg, out/kirsch_sigma_x.svg,
//          out/kirsch_deformed.svg
#include <algorithm>
#include <cstdio>

#include "ospl/ospl.h"
#include "plot/deformed.h"
#include "plot/mesh_plot.h"
#include "plot/svg.h"
#include "scenarios/scenarios.h"

using namespace feio;

int main() {
  const scenarios::AnalysisOutput out = scenarios::kirsch_analysis();
  const mesh::TriMesh& mesh = out.idlz.mesh;
  std::printf("%s\n", out.title.c_str());
  std::printf("O-grid: %d nodes, %d elements (two ring subdivisions, hole "
              "arc + square edge)\n",
              mesh.num_nodes(), mesh.num_elements());

  plot::write_svg(plot::plot_mesh(mesh, out.title), "out/kirsch_mesh.svg");
  plot::write_svg(plot::plot_deformed(mesh, out.displacement, out.title),
                  "out/kirsch_deformed.svg");

  ospl::OsplCase oc;
  oc.mesh = mesh;
  oc.values = out.fields[0].values;
  oc.title1 = out.title;
  oc.title2 = "CONTOUR PLOT * SIGMA-X *";
  oc.delta = out.fields[0].suggested_delta;
  const ospl::OsplResult plot = ospl::run(oc);
  plot::write_svg(plot.plot, "out/kirsch_sigma_x.svg");

  double scf = 0.0;
  for (int n = 0; n < mesh.num_nodes(); ++n) {
    const geom::Vec2 p = mesh.pos(n);
    if (std::abs(p.x) < 1e-6 && std::abs(p.y - 1.0) < 1e-6) {
      scf = out.fields[0].values[static_cast<size_t>(n)] / 100.0;
    }
  }
  std::printf("stress concentration at hole top: %.2f (analytic: 3.00)\n",
              scf);
  std::printf("sigma-x contours: interval %.0f, %zu segments\n", plot.delta,
              plot.segments.size());
  std::printf("wrote out/kirsch_mesh.svg, out/kirsch_sigma_x.svg, "
              "out/kirsch_deformed.svg\n");
  return 0;
}
