file(REMOVE_RECURSE
  "CMakeFiles/hatch.dir/hatch.cpp.o"
  "CMakeFiles/hatch.dir/hatch.cpp.o.d"
  "hatch"
  "hatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
