// The full IDLZ -> FEM -> nodal-field chains behind Figures 13-18.
#include <cmath>
#include <functional>
#include <set>

#include "fem/contact.h"
#include "fem/solver.h"
#include "fem/stress.h"
#include "fem/thermal.h"
#include "mesh/topology.h"
#include "scenarios/scenarios.h"
#include "util/error.h"

namespace feio::scenarios {
namespace {

using geom::Vec2;
using idlz::IdlzCase;
using idlz::IdlzResult;

IdlzResult idealize(IdlzCase c) {
  c.options.renumber_nodes = true;  // narrow band for the banded solver
  return idlz::run(c);
}

// Applies external pressure `p` (pushing into the material) on every
// boundary edge whose two end nodes satisfy `on_surface`. Edge direction is
// taken from the adjacent CCW element so the load points inward.
void external_pressure(fem::StaticProblem& prob, const mesh::TriMesh& mesh,
                       double p,
                       const std::function<bool(Vec2)>& on_surface) {
  const mesh::Topology topo(mesh);
  int applied = 0;
  for (const mesh::Edge& e : topo.boundary_edges()) {
    if (!on_surface(mesh.pos(e.a)) || !on_surface(mesh.pos(e.b))) continue;
    const std::vector<int> elems = topo.edge_elements(e);
    FEIO_ASSERT(elems.size() == 1);
    const mesh::Element& el = mesh.element(elems[0]);
    // Find the directed order of the edge within the element.
    int a = e.a;
    int b = e.b;
    for (int k = 0; k < 3; ++k) {
      if (el.n[static_cast<size_t>(k)] == e.b &&
          el.n[static_cast<size_t>((k + 1) % 3)] == e.a) {
        a = e.b;
        b = e.a;
        break;
      }
    }
    // For a CCW element the interior lies left of a->b, so a positive
    // pressure along the left normal pushes inward: external pressure.
    prob.edge_pressure(a, b, p);
    ++applied;
  }
  FEIO_REQUIRE(applied > 0, "pressure predicate matched no boundary edges");
}

void fix_where(fem::StaticProblem& prob, const mesh::TriMesh& mesh, bool x,
               bool y, const std::function<bool(Vec2)>& pred) {
  int fixed = 0;
  for (int n = 0; n < mesh.num_nodes(); ++n) {
    if (pred(mesh.pos(n))) {
      prob.fix(n, x, y);
      ++fixed;
    }
  }
  FEIO_REQUIRE(fixed > 0, "constraint predicate matched no nodes");
}

FieldOutput make_field(std::string name, std::vector<double> values,
                       double delta = 0.0) {
  FieldOutput f;
  f.name = std::move(name);
  f.values = std::move(values);
  f.suggested_delta = delta;
  return f;
}

}  // namespace

AnalysisOutput fig13_analysis() {
  AnalysisOutput out;
  out.id = "fig13";
  out.title = "DSSV BOTTOM HATCH";
  const IdlzCase c = fig09_dsrv_hatch();
  out.idlz = idealize(c);
  const mesh::TriMesh& mesh = out.idlz.mesh;

  fem::StaticProblem prob(mesh, fem::Analysis::kAxisymmetric);
  prob.set_material(fem::Material::isotropic(30.0e6, 0.30));  // steel hatch

  // Seat support: the rim's bottom row carries the hatch axially.
  for (int n : side_nodes(c, out.idlz, 0, idlz::Side::kParallelLow)) {
    prob.fix(n, false, true);
  }
  // Axis of revolution: no radial motion.
  fix_where(prob, mesh, true, false,
            [](Vec2 p) { return std::abs(p.x) < 1e-9; });
  // Diving pressure on the outer cap surface (radius 11.2 about origin).
  external_pressure(prob, mesh, 1000.0, [](Vec2 p) {
    return std::abs(p.norm() - 11.2) < 1e-6;
  });

  const fem::StaticSolution sol = fem::solve(prob);
  out.displacement = sol.displacement;
  out.fields.push_back(make_field(
      "EFFECTIVE STRESS",
      fem::nodal_field(prob, sol, fem::StressComponent::kEffective)));
  return out;
}

AnalysisOutput fig13_contact_analysis() {
  AnalysisOutput out;
  out.id = "fig13c";
  out.title = "DSSV BOTTOM HATCH MODIFIED FOR CONTACT";
  const IdlzCase c = fig09_dsrv_hatch();
  out.idlz = idealize(c);
  const mesh::TriMesh& mesh = out.idlz.mesh;

  fem::StaticProblem prob(mesh, fem::Analysis::kAxisymmetric);
  prob.set_material(fem::Material::isotropic(30.0e6, 0.30));
  fix_where(prob, mesh, true, false,
            [](Vec2 p) { return std::abs(p.x) < 1e-9; });
  external_pressure(prob, mesh, 1000.0, [](Vec2 p) {
    return std::abs(p.norm() - 11.2) < 1e-6;
  });

  // The seat: unilateral supports under the rim's bottom row.
  std::vector<fem::ContactSupport> seat;
  for (int n : side_nodes(c, out.idlz, 0, idlz::Side::kParallelLow)) {
    seat.push_back({n, 0.0});
  }
  const fem::ContactResult cr = fem::solve_with_contact(prob, seat);
  out.displacement = cr.solution.displacement;
  out.fields.push_back(make_field(
      "EFFECTIVE STRESS",
      fem::nodal_field(prob, cr.solution,
                       fem::StressComponent::kEffective)));

  // Seat report as a nodal field: reaction where bearing, 0 elsewhere.
  std::vector<double> reactions(static_cast<size_t>(mesh.num_nodes()), 0.0);
  for (size_t s = 0; s < seat.size(); ++s) {
    reactions[static_cast<size_t>(seat[s].node)] = cr.reaction[s];
  }
  out.fields.push_back(make_field("SEAT REACTION", std::move(reactions)));
  return out;
}

AnalysisOutput fig14_analysis() {
  AnalysisOutput out;
  out.id = "fig14";
  out.title = "T-BEAM EXPOSED TO A THERMAL RADIATION PULSE";
  const IdlzCase c = fig14_tee_beam();
  out.idlz = idealize(c);
  const mesh::TriMesh& mesh = out.idlz.mesh;

  fem::ThermalProblem prob(mesh, fem::Analysis::kPlaneStress);
  prob.set_material(fem::ThermalMaterial{0.25, 1.0});
  prob.set_initial_temperature(70.0);

  // One-second radiation pulse on the flange's exposed (top) face.
  const std::vector<int> top =
      side_nodes(c, out.idlz, 1, idlz::Side::kParallelHigh);
  for (size_t i = 0; i + 1 < top.size(); ++i) {
    prob.add_pulse(fem::FluxPulse{top[i], top[i + 1], 60.0, 0.0, 1.0});
  }

  const auto snaps = prob.integrate(0.02, 3.0, {2.0, 3.0});
  out.fields.push_back(
      make_field("TEMPERATURE, TIME = 2 SEC", snaps[0], 10.0));
  out.fields.push_back(
      make_field("TEMPERATURE, TIME = 3 SEC", snaps[1], 10.0));
  return out;
}

AnalysisOutput fig14_thermal_stress_analysis() {
  AnalysisOutput out;
  out.id = "fig14s";
  out.title = "THERMAL STRESS IN T-BEAM, TIME = 2 SEC";
  const AnalysisOutput thermal = fig14_analysis();
  out.idlz = thermal.idlz;
  const mesh::TriMesh& mesh = out.idlz.mesh;

  fem::StaticProblem prob(mesh, fem::Analysis::kPlaneStress);
  prob.set_material(fem::Material::isotropic(30.0e6, 0.30));  // steel Tee
  // Symmetry plane x = 0: no lateral motion; one axial anchor.
  int anchored = 0;
  for (int n = 0; n < mesh.num_nodes(); ++n) {
    if (std::abs(mesh.pos(n).x) < 1e-9) {
      prob.fix(n, true, anchored == 0);
      ++anchored;
    }
  }
  FEIO_REQUIRE(anchored > 0, "symmetry plane not found");
  prob.set_temperature_load(thermal.fields[0].values, 6.5e-6, 70.0);

  const fem::StaticSolution sol = fem::solve(prob);
  out.displacement = sol.displacement;
  out.fields.push_back(make_field(
      "EFFECTIVE THERMAL STRESS",
      fem::nodal_field(prob, sol, fem::StressComponent::kEffective)));
  return out;
}

namespace {

AnalysisOutput cylinder_closure_analysis(bool stiffened) {
  AnalysisOutput out;
  out.id = stiffened ? "fig15" : "fig16";
  out.title = stiffened
                  ? "GRP RING-STIFFENED CYLINDER AND END CLOSURE"
                  : "UNSTIFFENED CYLINDER AND END CLOSURE";
  const IdlzCase c = fig15_cylinder_closure(stiffened);
  out.idlz = idealize(c);
  const mesh::TriMesh& mesh = out.idlz.mesh;

  fem::StaticProblem prob(mesh, fem::Analysis::kAxisymmetric);
  // Glass-reinforced plastic: hoop-stiff filament winding.
  const fem::Material grp = fem::Material::orthotropic(
      1.5e6, 3.0e6, 6.0e6, 0.12, 0.10, 0.20, 0.6e6);
  const fem::Material titanium = fem::Material::isotropic(16.5e6, 0.31);
  prob.set_material(grp);
  for (int e : out.idlz.subdivision_elements[1]) {  // the closure
    prob.set_element_material(e, titanium);
  }

  // Mid-bay symmetry plane at z = 0; axis of revolution at r = 0.
  fix_where(prob, mesh, false, true,
            [](Vec2 p) { return std::abs(p.y) < 1e-9; });
  fix_where(prob, mesh, true, false,
            [](Vec2 p) { return std::abs(p.x) < 1e-9; });

  // External hydrostatic pressure on the outer wall and dome. (Stiffener
  // faces are left unloaded — a small understatement of total load noted
  // in DESIGN.md.)
  const Vec2 dome_center{0.0, 14.0};
  external_pressure(prob, mesh, 500.0, [dome_center](Vec2 p) {
    if (p.y <= 14.0 + 1e-9) return std::abs(p.x - 10.5) < 1e-6;
    return std::abs((p - dome_center).norm() - 10.5) < 1e-6;
  });

  const fem::StaticSolution sol = fem::solve(prob);
  out.displacement = sol.displacement;
  if (stiffened) {
    out.fields.push_back(make_field(
        "CIRCUMFERENTIAL STRESS",
        fem::nodal_field(prob, sol,
                         fem::StressComponent::kCircumferential)));
    out.fields.push_back(make_field(
        "SHEAR STRESS",
        fem::nodal_field(prob, sol, fem::StressComponent::kShear)));
  } else {
    out.fields.push_back(make_field(
        "EFFECTIVE STRESS",
        fem::nodal_field(prob, sol, fem::StressComponent::kEffective)));
    out.fields.push_back(make_field(
        "CIRCUMFERENTIAL STRESS",
        fem::nodal_field(prob, sol,
                         fem::StressComponent::kCircumferential)));
  }
  return out;
}

}  // namespace

AnalysisOutput fig15_analysis() { return cylinder_closure_analysis(true); }
AnalysisOutput fig16_analysis() { return cylinder_closure_analysis(false); }

AnalysisOutput fig17_analysis() {
  AnalysisOutput out;
  out.id = "fig17";
  out.title = "INTERNALLY REINFORCED GLASS JOINT";
  const IdlzCase c = fig01_glass_joint();
  out.idlz = idealize(c);
  const mesh::TriMesh& mesh = out.idlz.mesh;

  fem::StaticProblem prob(mesh, fem::Analysis::kAxisymmetric);
  const fem::Material glass = fem::Material::isotropic(9.5e6, 0.22);
  const fem::Material steel = fem::Material::isotropic(30.0e6, 0.30);
  prob.set_material(glass);
  // The reinforcement ring: material reaching inside the glass wall.
  for (int e = 0; e < mesh.num_elements(); ++e) {
    const auto corners = mesh.corners(e);
    const double rbar = (corners[0].x + corners[1].x + corners[2].x) / 3.0;
    if (rbar < 3.98) prob.set_element_material(e, steel);
  }

  // The joint continues into glass cylinders above and below: both cut
  // planes stay plane.
  for (int n : side_nodes(c, out.idlz, 0, idlz::Side::kParallelLow)) {
    prob.fix(n, false, true);
  }
  for (int n : side_nodes(c, out.idlz, 4, idlz::Side::kParallelHigh)) {
    prob.fix(n, false, true);
  }
  // Unit external pressure: stresses come out normalized by p, matching
  // the paper's 0.10 contour interval on this figure.
  external_pressure(prob, mesh, 1.0, [](Vec2 p) {
    return std::abs(p.x - 5.0) < 1e-6;
  });

  const fem::StaticSolution sol = fem::solve(prob);
  out.displacement = sol.displacement;
  out.fields.push_back(make_field(
      "MERIDIONAL STRESS",
      fem::nodal_field(prob, sol, fem::StressComponent::kMeridional)));
  out.fields.push_back(make_field(
      "RADIAL STRESS",
      fem::nodal_field(prob, sol, fem::StressComponent::kRadial)));
  return out;
}

AnalysisOutput fig18_analysis() {
  AnalysisOutput out;
  out.id = "fig18";
  out.title = "NEW HATCH (GLASS SPHERE)";
  const IdlzCase c = fig18_sphere_hatch();
  out.idlz = idealize(c);
  const mesh::TriMesh& mesh = out.idlz.mesh;

  fem::StaticProblem prob(mesh, fem::Analysis::kAxisymmetric);
  prob.set_material(fem::Material::isotropic(9.5e6, 0.22));  // glass

  // Seat ring at the 15-degree latitude edge; axis nodes radially fixed.
  for (int n : side_nodes(c, out.idlz, 0, idlz::Side::kParallelLow)) {
    prob.fix(n, false, true);
  }
  fix_where(prob, mesh, true, false,
            [](Vec2 p) { return std::abs(p.x) < 1e-9; });
  external_pressure(prob, mesh, 1000.0, [](Vec2 p) {
    return std::abs(p.norm() - 10.3) < 1e-6;
  });

  const fem::StaticSolution sol = fem::solve(prob);
  out.displacement = sol.displacement;
  out.fields.push_back(make_field(
      "CIRCUMFERENTIAL STRESS",
      fem::nodal_field(prob, sol, fem::StressComponent::kCircumferential)));
  out.fields.push_back(make_field(
      "EFFECTIVE STRESS",
      fem::nodal_field(prob, sol, fem::StressComponent::kEffective)));
  return out;
}

AnalysisOutput kirsch_analysis() {
  AnalysisOutput out;
  out.id = "kirsch";
  out.title = "QUARTER PLATE WITH CIRCULAR HOLE, REMOTE TENSION";
  const IdlzCase c = kirsch_plate();
  out.idlz = idealize(c);
  const mesh::TriMesh& mesh = out.idlz.mesh;

  const double sigma = 100.0;
  fem::StaticProblem prob(mesh, fem::Analysis::kPlaneStress);
  prob.set_material(fem::Material::isotropic(10.0e6, 0.30));
  // Quarter symmetry: y = 0 plane holds u_y, x = 0 plane holds u_x.
  fix_where(prob, mesh, false, true,
            [](Vec2 p) { return std::abs(p.y) < 1e-9; });
  fix_where(prob, mesh, true, false,
            [](Vec2 p) { return std::abs(p.x) < 1e-9; });
  // Remote tension: negative pressure (pull) on the x = 5 edge.
  external_pressure(prob, mesh, -sigma, [](Vec2 p) {
    return std::abs(p.x - 5.0) < 1e-9;
  });

  const fem::StaticSolution sol = fem::solve(prob);
  out.displacement = sol.displacement;
  // sigma_x is "s11" in plane terms; kRadial extracts s11.
  out.fields.push_back(make_field(
      "SIGMA-X", fem::nodal_field(prob, sol, fem::StressComponent::kRadial),
      25.0));
  return out;
}

std::vector<AnalysisOutput> all_analyses() {
  std::vector<AnalysisOutput> v;
  v.push_back(fig13_analysis());
  v.push_back(fig14_analysis());
  v.push_back(fig15_analysis());
  v.push_back(fig16_analysis());
  v.push_back(fig17_analysis());
  v.push_back(fig18_analysis());
  return v;
}

}  // namespace feio::scenarios
