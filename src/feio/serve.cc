#include "feio/serve.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <istream>
#include <map>
#include <ostream>
#include <thread>
#include <vector>

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#endif

#include "cards/format_cache.h"
#include "feio/api.h"
#include "fem/assembly.h"
#include "fem/factor_cache.h"
#include "fem/solver.h"
#include "idlz/deck.h"
#include "ospl/deck.h"
#include "util/cancel.h"
#include "util/diag.h"
#include "util/drr.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/mutex.h"
#include "util/parallel.h"
#include "util/thread_annotations.h"

namespace feio::serve {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// ---------------------------------------------------------------------------
// Per-job execution.

enum class JobStatus { kOk, kRejected, kTimedOut, kFaulted, kError };

const char* status_name(JobStatus s) {
  switch (s) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kRejected: return "rejected";
    case JobStatus::kTimedOut: return "timeout";
    case JobStatus::kFaulted: return "faulted";
    case JobStatus::kError: return "error";
  }
  return "error";
}

// A job's bucket, decided by the diagnostics it ended with. Deadline beats
// fault beats admission beats generic error: the most pipeline-external
// cause wins so the summary counts what actually stopped the job.
JobStatus classify(const DiagSink& sink) {
  bool rejected = false;
  bool timed_out = false;
  bool faulted = false;
  for (const Diag& d : sink.diags()) {
    if (d.severity != Severity::kError) continue;
    if (d.code == "E-RES-005") {
      timed_out = true;
    } else if (d.code == "E-RES-006") {
      faulted = true;
    } else if (d.code.rfind("E-RES-00", 0) == 0) {
      rejected = true;
    }
  }
  if (timed_out) return JobStatus::kTimedOut;
  if (faulted) return JobStatus::kFaulted;
  if (rejected) return JobStatus::kRejected;
  if (!sink.ok()) return JobStatus::kError;
  return JobStatus::kOk;
}

// One single-line kind-"job" envelope. Diagnostics are capped so a hopeless
// deck cannot blow the line up; the counts always cover everything. `seq` is
// per-connection, which is what keeps socket-mode envelopes byte-identical
// to stdin mode for the same job stream.
std::string render_job_envelope(const std::string& id,
                                const std::string& tenant, std::int64_t seq,
                                JobStatus status, double elapsed_ms,
                                const DiagSink& sink) {
  constexpr size_t kMaxDiags = 8;
  std::string out = "{";
  out += "\"schema\": \"" + std::string(kReportSchema) + "\", ";
  out += "\"kind\": \"job\", ";
  out += "\"tool_version\": \"" + std::string(kToolVersion) + "\", ";
  out += "\"generated_by\": \"feio\", ";
  out += "\"id\": \"" + json_escape(id) + "\", ";
  out += "\"tenant\": \"" + json_escape(tenant) + "\", ";
  out += "\"seq\": " + std::to_string(seq) + ", ";
  out += "\"status\": \"" + std::string(status_name(status)) + "\", ";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", elapsed_ms);
  out += "\"elapsed_ms\": " + std::string(buf) + ", ";
  out += "\"errors\": " + std::to_string(sink.error_count()) + ", ";
  out += "\"warnings\": " + std::to_string(sink.warning_count()) + ", ";
  out += "\"diagnostics\": [";
  size_t emitted = 0;
  for (const Diag& d : sink.diags()) {
    if (emitted == kMaxDiags) break;
    if (emitted > 0) out += ", ";
    out += "{\"severity\": \"" + std::string(severity_name(d.severity)) +
           "\", \"code\": \"" + json_escape(d.code) + "\", \"message\": \"" +
           json_escape(d.message) + "\"}";
    ++emitted;
  }
  out += "]}";
  return out;
}

// The canonical static analysis the "solve" pipeline runs on an idealized
// mesh: plane stress, unit-modulus isotropic material, every node on the
// minimum-x column clamped, a downward load at the maximum-x node (lowest
// index on ties) scaled by the job's load_case (case 0 keeps the historical
// unit load). Mesh + load_case fully determine the problem — and only the
// load vector depends on load_case, so jobs that vary nothing else hit one
// cached factorization (the operator/loads key split in fem/factor_cache.h)
// and re-solve their own right-hand side against it.
fem::StaticSolution solve_canonical(const mesh::TriMesh& mesh,
                                    const RunOptions& ro,
                                    std::int64_t load_case) {
  fem::StaticProblem problem(mesh, fem::Analysis::kPlaneStress);
  problem.set_material(fem::Material::isotropic(1000.0, 0.3));
  double min_x = mesh.pos(0).x;
  double max_x = mesh.pos(0).x;
  int load_node = 0;
  for (int n = 0; n < mesh.num_nodes(); ++n) {
    const double x = mesh.pos(n).x;
    min_x = std::min(min_x, x);
    if (x > max_x) {
      max_x = x;
      load_node = n;
    }
  }
  for (int n = 0; n < mesh.num_nodes(); ++n) {
    if (mesh.pos(n).x == min_x) problem.fix(n, true, true);
  }
  problem.point_load(load_node,
                     {0.0, -1.0 - static_cast<double>(load_case)});
  return fem::solve(problem, ro);
}

std::int64_t count_cards(const std::string& deck) {
  if (deck.empty()) return 0;
  std::int64_t n = 1;
  for (const char ch : deck) n += ch == '\n';
  return n;
}

struct JobOutcome {
  JobStatus status = JobStatus::kError;
  std::string envelope;
  double elapsed_ms = 0.0;
};

// One completed job as the rolling-window report sees it: when it finished
// on the session clock, how long it took, which tenant it belonged to, and
// the *cumulative* cache counters at that moment (windows take deltas
// between their boundary samples, which is what makes per-window hit rates
// exact even though the windows are cut after the fact).
struct JobSample {
  double done_ms = 0.0;
  double elapsed_ms = 0.0;
  int tenant = 0;
  std::int64_t format_hits = 0;
  std::int64_t format_misses = 0;
  std::int64_t factor_hits = 0;
  std::int64_t factor_misses = 0;
};

// Runs one admitted job start to finish on the calling (worker) thread.
// All robustness state — armed faults, guard limits, cancel token — is
// scoped to this frame, so the worker lane is pristine for the next job
// no matter how this one ends. `limits` is the job's tenant's merged
// GuardLimits (base ServeOptions::guard with the tenant's overrides).
JobOutcome run_job(const Job& job, std::int64_t seq, const ServeOptions& opts,
                   const util::GuardLimits& limits,
                   fem::FactorCache* factor_cache) {
  const auto t0 = Clock::now();
  DiagSink sink;
  JobOutcome out;

  // Per-job fault isolation: an empty FaultScope masks any process-wide
  // armed set; the job's own spec (if any) arms inside the fresh scope.
  util::FaultScope faults;
  if (!job.fault.empty()) {
    std::string error;
    if (!faults.arm(job.fault, error)) {
      sink.error("E-SRV-001", "bad \"fault\": " + error);
      out.status = JobStatus::kError;
      out.elapsed_ms = ms_since(t0);
      out.envelope = render_job_envelope(job.id, job.tenant, seq, out.status,
                                         out.elapsed_ms, sink);
      return out;
    }
  }

  util::ScopedGuard guard(&limits);

  // Deck admission before any parsing or allocation.
  if (auto rejection = util::admit_deck(
          "job \"" + job.id + "\"", count_cards(job.deck),
          static_cast<std::int64_t>(job.deck.size()), limits)) {
    sink.add(*rejection);
    out.status = JobStatus::kRejected;
    out.elapsed_ms = ms_since(t0);
    out.envelope = render_job_envelope(job.id, job.tenant, seq, out.status,
                                       out.elapsed_ms, sink);
    return out;
  }

  const std::int64_t deadline_ms =
      job.deadline_ms > 0 ? job.deadline_ms : opts.default_deadline_ms;
  const util::CancelToken token{
      std::chrono::milliseconds(deadline_ms > 0 ? deadline_ms : 1)};
  const util::CancelToken no_deadline;
  const util::CancelToken* cancel =
      deadline_ms > 0 ? &token : &no_deadline;
  // The deck parsers observe the token through the thread-local current;
  // run_idlz / run_ospl re-install it from RunOptions.
  util::ScopedCancel cancel_scope(cancel);

  RunOptions ro;
  ro.cancel = cancel;
  ro.threads = 1;  // one lane per job; the pool provides the concurrency
  ro.make_plots = false;
  ro.punch = false;
  ro.factor_cache = factor_cache;  // consulted by the "solve" pipeline only
  ro.solver_storage = opts.solver_storage;
  ro.ordering = opts.ordering;

  try {
    if (job.pipeline == "idlz" || job.pipeline == "solve") {
      const std::vector<idlz::IdlzCase> cases =
          idlz::read_deck_string(job.deck, sink, "job:" + job.id);
      for (const idlz::IdlzCase& c : cases) {
        const std::optional<idlz::IdlzResult> result = run_idlz(c, sink, ro);
        if (job.pipeline == "solve" && result.has_value()) {
          // Warm-path reuse happens inside fem::solve via the session
          // factor cache; a faulted/timed-out/singular solve throws past
          // the cache insert, so it cannot poison later jobs.
          solve_canonical(result->mesh, ro, job.load_case);
        }
      }
    } else {
      const ospl::OsplCase c =
          ospl::read_deck_string(job.deck, sink, "job:" + job.id);
      if (sink.ok()) run_ospl(c, sink, ro);
    }
  } catch (const ResourceError& e) {
    // Thrown outside run_checked's net (deck parsing hits card.read /
    // deck.parse faults and cancel checks); same structured mapping.
    sink.error(e.code(), e.what());
  } catch (const Error& e) {
    sink.error("E-SRV-002", std::string("job failed: ") + e.what());
  } catch (const std::exception& e) {
    sink.error("E-SRV-002", std::string("internal error: ") + e.what());
  }

  out.status = classify(sink);
  out.elapsed_ms = ms_since(t0);
  out.envelope = render_job_envelope(job.id, job.tenant, seq, out.status,
                                     out.elapsed_ms, sink);
  return out;
}

std::string fmt_ms(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

std::string fmt_rate(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  return buf;
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

#if !defined(_WIN32)
// Writes the whole buffer, riding out EINTR and partial sends. MSG_NOSIGNAL
// turns a dead peer into an error return instead of SIGPIPE; EAGAIN from an
// expired SO_SNDTIMEO (a peer that stopped reading) is likewise a failure.
bool send_all(int fd, const std::string& data) {
  const char* p = data.data();
  size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  return true;
}
#endif

// Cuts the completion-ordered samples into rolling windows of `window_jobs`
// (last window may be short). Per-window hit rates come from the delta of
// the cumulative counters across the window's boundary samples; per-window
// tenant shares (the observable the DRR fairness tests pin down) come from
// counting each window's completions per tenant.
std::vector<ServeWindow> cut_windows(const std::vector<JobSample>& samples,
                                     int window_jobs,
                                     const std::vector<std::string>& tenants) {
  std::vector<ServeWindow> windows;
  if (window_jobs <= 0 || samples.empty()) return windows;
  const auto rate = [](std::int64_t hits, std::int64_t misses) {
    const std::int64_t lookups = hits + misses;
    return lookups > 0 ? static_cast<double>(hits) /
                             static_cast<double>(lookups)
                       : 0.0;
  };
  for (size_t begin = 0; begin < samples.size();
       begin += static_cast<size_t>(window_jobs)) {
    const size_t end =
        std::min(begin + static_cast<size_t>(window_jobs), samples.size());
    ServeWindow w;
    w.jobs = static_cast<std::int64_t>(end - begin);
    const double start_ms = begin == 0 ? 0.0 : samples[begin - 1].done_ms;
    w.wall_ms = samples[end - 1].done_ms - start_ms;
    w.jobs_per_sec = w.wall_ms > 0.0
                         ? 1000.0 * static_cast<double>(w.jobs) / w.wall_ms
                         : 0.0;
    std::vector<double> lat;
    lat.reserve(end - begin);
    std::vector<std::int64_t> per_tenant(tenants.size(), 0);
    for (size_t i = begin; i < end; ++i) {
      lat.push_back(samples[i].elapsed_ms);
      if (samples[i].tenant >= 0 &&
          static_cast<size_t>(samples[i].tenant) < per_tenant.size()) {
        ++per_tenant[static_cast<size_t>(samples[i].tenant)];
      }
    }
    std::sort(lat.begin(), lat.end());
    w.p50_ms = percentile(lat, 0.50);
    w.p99_ms = percentile(lat, 0.99);
    const JobSample& last = samples[end - 1];
    const JobSample prev = begin == 0 ? JobSample{} : samples[begin - 1];
    w.format_hit_rate = rate(last.format_hits - prev.format_hits,
                             last.format_misses - prev.format_misses);
    w.factor_hit_rate = rate(last.factor_hits - prev.factor_hits,
                             last.factor_misses - prev.factor_misses);
    for (size_t t = 0; t < tenants.size(); ++t) {
      w.tenant_shares.emplace_back(
          tenants[t], static_cast<double>(per_tenant[t]) /
                          static_cast<double>(w.jobs));
    }
    windows.push_back(w);
  }
  return windows;
}

// One admitted job waiting in (or popped from) the DRR queue.
struct Pending {
  Job job;
  std::int64_t seq = 0;  // per-connection envelope slot
  int conn = 0;          // Session connection index
  int tenant = 0;        // Session tenant index
};

// One transport connection: the stdin session's single ostream, or one
// accepted socket. Envelopes are held per connection and flushed in
// per-connection seq order. `next_seq` belongs to the connection's one
// submitting thread; everything else is guarded by the session mutex (the
// fields cannot carry FEIO_GUARDED_BY because the capability lives on the
// Session — every access site below sits in a FEIO_REQUIRES(mu_) method).
// The actual stream/socket write happens *outside* the session mutex:
// `writing` elects exactly one flushing thread per connection, so a peer
// that stops reading blocks only that one thread (until its send timeout),
// never mu_, the pool, or the other connections.
struct Connection {
  std::ostream* stream = nullptr;  // stdin transport sink (exactly one of
  int fd = -1;                     // stream / fd is set)
  std::int64_t next_seq = 0;       // submitting-thread-private
  std::map<std::int64_t, std::string> ready;  // seq -> envelope line
  std::int64_t next_flush = 0;
  bool writing = false;  // a thread is sending this connection's batch
  bool failed = false;   // dead pipe / dead peer: drain, discard writes
};

// One tenant's admission lane and accounting.
struct TenantState {
  std::string name;
  int weight = 1;
  int queue_capacity = 0;  // 0 = bounded only by the session queue
  util::GuardLimits limits;
  int lane = 0;        // DrrQueue lane index
  int in_flight = 0;   // admitted, envelope not yet recorded
  TenantSummary sums;  // buckets accumulated as jobs record
};

// The serve session: one pool, one factor cache, one DRR admission queue,
// any number of transports feeding submit_line() from their own threads.
// One mutex orders everything the submitting threads and the pool workers
// both touch; the annotated member functions carry the locking contract so
// clang enforces it instead of prose.
class Session {
 public:
  explicit Session(const ServeOptions& opts)
      : opts_(opts),
        tracer_scope_(opts.tracer),
        metrics_scope_(opts.metrics),
        capacity_(std::max(1, opts.queue_capacity)),
        factor_cache_(
            static_cast<std::size_t>(std::max(0, opts.factor_cache_capacity)),
            std::max<std::int64_t>(0, opts.factor_ttl_ms)),
        factors_(opts.factor_cache_capacity > 0 ? &factor_cache_ : nullptr),
        format_base_(rebind_format_cache(opts.format_cache_capacity)),
        max_line_bytes_(line_cap(opts)),
        t0_(Clock::now()),
        pool_(std::max(1, util::resolve_threads(opts.threads))) {
    util::MutexLock lock(mu_);
    for (const TenantConfig& cfg : opts.tenants) {
      if (!valid_tenant_name(cfg.name)) {
        fail("invalid tenant name \"" + cfg.name +
             "\" (want 1-64 chars of [A-Za-z0-9_-])");
      }
      const int ti = tenant_index_locked(cfg.name);
      TenantState& t = tenants_[static_cast<size_t>(ti)];
      t.weight = std::max(1, cfg.weight);
      t.queue_capacity = std::max(0, cfg.queue_capacity);
      t.limits = cfg.guard.apply(opts_.guard);
      drr_.set_weight(t.lane, t.weight);
    }
  }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  fem::FactorCache* factors() { return factors_; }

  // Transport-level bound on one buffered request line: a reader that has
  // accumulated more than this without seeing '\n' must stop buffering
  // (the admission guards only run on complete lines, so the transport
  // has to bound the in-progress line itself).
  std::int64_t max_line_bytes() const { return max_line_bytes_; }

  // Records the one-envelope rejection for an over-long unterminated
  // request line — the transport twin of admit_deck's E-RES-001 — so the
  // client learns why before the caller marks the connection failed.
  void reject_oversize_line(int conn, std::int64_t bytes)
      FEIO_EXCLUDES(mu_) {
    const std::int64_t seq = next_seq(conn);
    DiagSink sink;
    sink.error("E-RES-001",
               "request line exceeds " + std::to_string(max_line_bytes_) +
                   " bytes (" + std::to_string(bytes) +
                   " buffered without a newline); closing connection");
    JobOutcome outcome;
    outcome.status = JobStatus::kRejected;
    outcome.envelope =
        render_job_envelope("job-" + std::to_string(seq), "default", seq,
                            outcome.status, 0.0, sink);
    record(conn, seq, "default", outcome, /*admitted=*/false);
  }

  // Registers a transport connection and returns its index.
  int add_stream_connection(std::ostream& out) FEIO_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    connections_.emplace_back();
    connections_.back().stream = &out;
    return static_cast<int>(connections_.size()) - 1;
  }

  int add_socket_connection(int fd) FEIO_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    connections_.emplace_back();
    connections_.back().fd = fd;
    return static_cast<int>(connections_.size()) - 1;
  }

  bool connection_failed(int conn) FEIO_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return connections_[static_cast<size_t>(conn)].failed;
  }

  // Marks a connection's peer dead (recv error). Its admitted jobs still
  // drain; their envelopes are discarded by flush_conn_locked.
  void mark_connection_failed(int conn) FEIO_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    mark_failed_locked(connections_[static_cast<size_t>(conn)]);
  }

  // One input line from a connection's submitting thread: parse, admit (or
  // reject in place), enqueue. Every line gets exactly one envelope in
  // per-connection order, whatever happens to it.
  void submit_line(int conn, const std::string& line) FEIO_EXCLUDES(mu_) {
    const std::int64_t seq = next_seq(conn);
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      // A blank line keeps its slot in the output order (a consumer pairing
      // envelopes to input lines must never desynchronize) but carries no
      // job: an immediate E-SRV-001 envelope.
      DiagSink sink;
      sink.error("E-SRV-001", "blank job line");
      JobOutcome outcome;
      outcome.status = JobStatus::kError;
      outcome.envelope =
          render_job_envelope("job-" + std::to_string(seq), "default", seq,
                              outcome.status, 0.0, sink);
      record(conn, seq, "default", outcome, /*admitted=*/false);
      return;
    }

    Job job;
    std::string error;
    if (!parse_job_line(line, job, error)) {
      // The parse may have died before or after the tenant key; attribute
      // to the parsed tenant only when it is a usable lane name.
      const std::string tenant =
          valid_tenant_name(job.tenant) ? job.tenant : "default";
      DiagSink sink;
      sink.error("E-SRV-001", "malformed job line: " + error);
      JobOutcome outcome;
      outcome.status = JobStatus::kError;
      outcome.envelope = render_job_envelope(
          job.id.empty() ? "job-" + std::to_string(seq) : job.id, tenant,
          seq, outcome.status, 0.0, sink);
      record(conn, seq, tenant, outcome, /*admitted=*/false);
      return;
    }
    if (job.id.empty()) job.id = "job-" + std::to_string(seq);

    std::string reject;
    bool admitted = false;
    {
      util::MutexLock lock(mu_);
      const int ti = tenant_index_locked(job.tenant);
      TenantState& t = tenants_[static_cast<size_t>(ti)];
      if (total_in_flight_ >= capacity_) {
        reject = "admission queue full (" + std::to_string(capacity_) +
                 " jobs in flight); job rejected";
      } else if (t.queue_capacity > 0 && t.in_flight >= t.queue_capacity) {
        reject = "tenant \"" + t.name + "\" queue full (" +
                 std::to_string(t.queue_capacity) +
                 " jobs in flight); job rejected";
      } else {
        admitted = true;
        ++total_in_flight_;
        ++t.in_flight;
        FEIO_METRIC_ADD_DYN("serve.tenant.", t.name + ".admitted", 1);
        drr_.push(t.lane, Pending{std::move(job), seq, conn, ti});
      }
    }
    if (admitted) {
      // Push-then-post: every posted task pops exactly one Pending, so the
      // queue can never underflow (tasks == queued items, always).
      pool_.post([this] { run_one(); });
      return;
    }
    // Queue-full rejection: never started, but still one envelope in order
    // so the stream stays lockstep with its input.
    DiagSink sink;
    sink.error("E-RES-004", reject);
    JobOutcome outcome;
    outcome.status = JobStatus::kRejected;
    outcome.envelope = render_job_envelope(job.id, job.tenant, seq,
                                           outcome.status, 0.0, sink);
    record(conn, seq, job.tenant, outcome, /*admitted=*/false);
  }

  // Drains every admitted job (even after connection failures — workers
  // must never be abandoned mid-run), flushes every connection, and builds
  // the whole-session summary. Call exactly once, after all submitting
  // threads are done.
  ServeSummary finish() FEIO_EXCLUDES(mu_) {
    ServeSummary summary;
    std::vector<double> latencies;
    std::vector<JobSample> samples;
    std::vector<std::string> tenant_names;
    int nconns = 0;
    {
      util::MutexLock lock(mu_);
      while (total_in_flight_ != 0) lock.wait(cv_);
      nconns = static_cast<int>(connections_.size());
    }
    // Every envelope is recorded; push each connection's leftovers out
    // (off the lock), then wait for in-progress writers to go idle.
    for (int i = 0; i < nconns; ++i) flush_conn(i);
    {
      util::MutexLock lock(mu_);
      for (bool busy = true; busy; ) {
        busy = false;
        for (const Connection& c : connections_) {
          busy = busy || c.writing || !c.ready.empty();
        }
        if (busy) lock.wait(cv_);
      }
      summary = summary_;
      latencies = std::move(latencies_);
      samples = std::move(samples_);
      summary.connections = static_cast<std::int64_t>(connections_.size());
      for (TenantState& t : tenants_) {
        t.sums.tenant = t.name;
        t.sums.weight = t.weight;
        summary.tenants.push_back(t.sums);
        tenant_names.push_back(t.name);
      }
    }

    summary.wall_ms = ms_since(t0_);
    summary.jobs_per_sec =
        summary.wall_ms > 0.0
            ? 1000.0 * static_cast<double>(summary.jobs) / summary.wall_ms
            : 0.0;
    std::sort(latencies.begin(), latencies.end());
    summary.p50_ms = percentile(latencies, 0.50);
    summary.p99_ms = percentile(latencies, 0.99);
    summary.max_ms = latencies.empty() ? 0.0 : latencies.back();
    for (TenantSummary& t : summary.tenants) {
      t.share = summary.jobs > 0
                    ? static_cast<double>(t.jobs) /
                          static_cast<double>(summary.jobs)
                    : 0.0;
    }

    // Cache totals, zeroed AND flagged when a cache is disabled so an
    // ablation envelope can never pass stale counters off as activity.
    summary.format_cache_enabled = opts_.format_cache_capacity > 0;
    summary.factor_cache_enabled = factors_ != nullptr;
    if (summary.format_cache_enabled) {
      const cards::FormatCacheStats format_end = cards::format_cache_stats();
      summary.format_hits = format_end.hits - format_base_.hits;
      summary.format_misses = format_end.misses - format_base_.misses;
    }
    if (factors_ != nullptr) {
      const fem::FactorCacheStats fac = factors_->stats();
      summary.factor_hits = fac.hits;
      summary.factor_misses = fac.misses;
      summary.factor_load_reuses = fac.load_reuses;
      summary.factor_ttl_evictions = fac.ttl_evictions;
    }
    summary.window_jobs = std::max(0, opts_.window_jobs);
    summary.windows = cut_windows(samples, opts_.window_jobs, tenant_names);
    return summary;
  }

 private:
  // The request-line cap: the largest effective tenant deck limit with
  // headroom for JSON escaping (worst case 6 bytes per deck byte, the
  // \uXXXX form) plus the request's non-deck fields. Any lane left with
  // an unlimited deck guard falls back to an absolute transport bound —
  // the connection buffer must stay finite even when admission is not.
  static std::int64_t line_cap(const ServeOptions& opts) {
    std::int64_t deck = opts.guard.max_deck_bytes;
    bool unlimited = deck <= 0;
    for (const TenantConfig& cfg : opts.tenants) {
      const std::int64_t b = cfg.guard.apply(opts.guard).max_deck_bytes;
      if (b <= 0) {
        unlimited = true;
      } else {
        deck = std::max(deck, b);
      }
    }
    std::int64_t cap = 6 * deck + (std::int64_t{1} << 16);
    if (unlimited) cap = std::max(cap, std::int64_t{1} << 28);
    return cap;
  }

  // Rebinds the process-wide FORMAT intern cache to the session capacity
  // and snapshots its cumulative counters (session stats are deltas).
  static cards::FormatCacheStats rebind_format_cache(int capacity) {
    cards::set_format_cache_capacity(
        static_cast<std::size_t>(std::max(0, capacity)));
    return cards::format_cache_stats();
  }

  // The connection's own submitting thread is the only writer of next_seq,
  // but the Connection object lives in mu_-guarded storage; take the lock
  // for the (cheap) increment rather than special-casing the field.
  std::int64_t next_seq(int conn) FEIO_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return connections_[static_cast<size_t>(conn)].next_seq++;
  }

  // Index of the named tenant's lane, auto-registering unknown names with
  // defaults (weight 1, inherited limits, unbounded tenant queue).
  int tenant_index_locked(const std::string& name) FEIO_REQUIRES(mu_) {
    const auto it = tenant_index_.find(name);
    if (it != tenant_index_.end()) return it->second;
    TenantState t;
    t.name = name;
    t.limits = opts_.guard;
    t.lane = drr_.add_lane(1);
    tenants_.push_back(std::move(t));
    const int ti = static_cast<int>(tenants_.size()) - 1;
    tenant_index_.emplace(name, ti);
    return ti;
  }

  void mark_failed_locked(Connection& conn) FEIO_REQUIRES(mu_) {
    if (conn.failed) return;
    conn.failed = true;
    ++summary_.connections_failed;
  }

  // Consumes the contiguous run of envelopes whose turn has come, in
  // per-connection seq order, appending the newline-terminated lines to
  // `batch`. A failed connection keeps consuming its slots (the drain
  // must not stall on a dead peer) with the writes discarded.
  void collect_ready_locked(Connection& conn, std::string& batch)
      FEIO_REQUIRES(mu_) {
    for (auto it = conn.ready.begin();
         it != conn.ready.end() && it->first == conn.next_flush;
         it = conn.ready.erase(it), ++conn.next_flush) {
      if (conn.failed) continue;
      batch += it->second;
      batch += '\n';
    }
  }

  // Sends every envelope whose turn has come on `conn`, with the blocking
  // stream/socket write OUTSIDE the session mutex. Connection::writing
  // elects one flushing thread at a time (preserving in-order replies);
  // a latecomer returns immediately and the active writer re-collects, so
  // nothing is dropped. A peer that stops reading therefore stalls only
  // the elected thread — its socket's SO_SNDTIMEO turns persistent
  // backpressure into a failed connection — never mu_ or other tenants.
  void flush_conn(int conn) FEIO_EXCLUDES(mu_) {
    {
      util::MutexLock lock(mu_);
      Connection& c = connections_[static_cast<size_t>(conn)];
      if (c.writing) return;  // the active writer picks these up
      c.writing = true;
    }
    for (;;) {
      std::string batch;
      std::ostream* stream = nullptr;
      int fd = -1;
      {
        util::MutexLock lock(mu_);
        Connection& c = connections_[static_cast<size_t>(conn)];
        collect_ready_locked(c, batch);
        if (batch.empty()) {
          c.writing = false;
          cv_.notify_all();  // finish() waits for writers to go idle
          return;
        }
        stream = c.stream;
        fd = c.fd;
      }
      bool ok;
      if (stream != nullptr) {
        *stream << batch;
        stream->flush();
        ok = !stream->fail();
      } else {
        ok = send_conn(fd, batch);
      }
      if (!ok) {
        util::MutexLock lock(mu_);
        mark_failed_locked(connections_[static_cast<size_t>(conn)]);
        // Keep looping: remaining ready slots drain via the discard path.
      }
    }
  }

  static bool send_conn(int fd, const std::string& data) {
#if defined(_WIN32)
    (void)fd;
    (void)data;
    return false;
#else
    return send_all(fd, data);
#endif
  }

  // Pops the DRR-chosen next job and runs it; posted once per admitted
  // job, so the pop precondition (queue non-empty) always holds.
  void run_one() FEIO_EXCLUDES(mu_) {
    Pending p;
    util::GuardLimits limits;
    {
      util::MutexLock lock(mu_);
      p = drr_.pop();
      limits = tenants_[static_cast<size_t>(p.tenant)].limits;
    }
    const JobOutcome outcome =
        run_job(p.job, p.seq, opts_, limits, factors_);
    {
      util::MutexLock lock(mu_);
      record_locked(p.conn, p.seq, p.tenant, outcome, /*admitted=*/true);
    }
    flush_conn(p.conn);
  }

  void record(int conn, std::int64_t seq, const std::string& tenant,
              const JobOutcome& outcome, bool admitted) FEIO_EXCLUDES(mu_) {
    {
      util::MutexLock lock(mu_);
      record_locked(conn, seq, tenant_index_locked(tenant), outcome,
                    admitted);
    }
    flush_conn(conn);
  }

  void record_locked(int conn, std::int64_t seq, int ti,
                     const JobOutcome& outcome, bool admitted)
      FEIO_REQUIRES(mu_) {
    TenantState& t = tenants_[static_cast<size_t>(ti)];
    ++summary_.jobs;
    ++t.sums.jobs;
    switch (outcome.status) {
      case JobStatus::kOk: ++summary_.ok; ++t.sums.ok; break;
      case JobStatus::kRejected: ++summary_.rejected; ++t.sums.rejected; break;
      case JobStatus::kTimedOut: ++summary_.timed_out; ++t.sums.timed_out; break;
      case JobStatus::kFaulted: ++summary_.faulted; ++t.sums.faulted; break;
      case JobStatus::kError: ++summary_.errors; ++t.sums.errors; break;
    }
    if (admitted) {
      FEIO_METRIC_ADD_DYN("serve.tenant.", t.name + ".completed", 1);
    } else if (outcome.status == JobStatus::kRejected) {
      FEIO_METRIC_ADD_DYN("serve.tenant.", t.name + ".rejected", 1);
    }
    latencies_.push_back(outcome.elapsed_ms);
    JobSample sample;
    sample.done_ms = ms_since(t0_);
    sample.elapsed_ms = outcome.elapsed_ms;
    sample.tenant = ti;
    const cards::FormatCacheStats fmt = cards::format_cache_stats();
    sample.format_hits = fmt.hits - format_base_.hits;
    sample.format_misses = fmt.misses - format_base_.misses;
    if (factors_ != nullptr) {
      const fem::FactorCacheStats fac = factors_->stats();
      sample.factor_hits = fac.hits;
      sample.factor_misses = fac.misses;
    }
    samples_.push_back(sample);
    Connection& c = connections_[static_cast<size_t>(conn)];
    c.ready.emplace(seq, outcome.envelope);
    if (admitted) {
      --total_in_flight_;
      --t.in_flight;
    }
    // The caller flushes after releasing mu_ (flush_conn): the envelope
    // send must never run inside the session-wide critical section.
    cv_.notify_all();
  }

  const ServeOptions opts_;
  util::ScopedTracerInstall tracer_scope_;
  util::ScopedMetricsInstall metrics_scope_;
  const int capacity_;
  fem::FactorCache factor_cache_;
  fem::FactorCache* const factors_;
  const cards::FormatCacheStats format_base_;
  const std::int64_t max_line_bytes_;
  const Clock::time_point t0_;

  util::Mutex mu_;
  std::condition_variable cv_;
  // deques: workers hold references across pool-driven growth, and deque
  // push_back never invalidates existing elements.
  std::deque<Connection> connections_ FEIO_GUARDED_BY(mu_);
  std::deque<TenantState> tenants_ FEIO_GUARDED_BY(mu_);
  std::map<std::string, int> tenant_index_ FEIO_GUARDED_BY(mu_);
  util::DrrQueue<Pending> drr_ FEIO_GUARDED_BY(mu_);
  int total_in_flight_ FEIO_GUARDED_BY(mu_) = 0;
  ServeSummary summary_ FEIO_GUARDED_BY(mu_);
  std::vector<double> latencies_ FEIO_GUARDED_BY(mu_);
  std::vector<JobSample> samples_ FEIO_GUARDED_BY(mu_);

  // Declared last: destroyed first, joining the workers while every member
  // they touch is still alive. finish() has already drained the queue.
  util::ThreadPool pool_;
};

}  // namespace

std::string ServeSummary::render_bench_json() const {
  std::string out = "{\n";
  out += report_header_json("bench");
  out += "  \"payload_schema\": \"feio.bench.serve/1\",\n";
  out += "  \"jobs\": " + std::to_string(jobs) + ",\n";
  out += "  \"ok\": " + std::to_string(ok) + ",\n";
  out += "  \"rejected\": " + std::to_string(rejected) + ",\n";
  out += "  \"timed_out\": " + std::to_string(timed_out) + ",\n";
  out += "  \"faulted\": " + std::to_string(faulted) + ",\n";
  out += "  \"errors\": " + std::to_string(errors) + ",\n";
  out += "  \"wall_ms\": " + fmt_ms(wall_ms) + ",\n";
  out += "  \"jobs_per_sec\": " + fmt_ms(jobs_per_sec) + ",\n";
  out += "  \"p50_ms\": " + fmt_ms(p50_ms) + ",\n";
  out += "  \"p99_ms\": " + fmt_ms(p99_ms) + ",\n";
  out += "  \"max_ms\": " + fmt_ms(max_ms) + ",\n";
  out += "  \"connections\": " + std::to_string(connections) + ",\n";
  out += "  \"connections_failed\": " + std::to_string(connections_failed) +
         ",\n";
  const auto rate = [](std::int64_t hits, std::int64_t misses) {
    const std::int64_t lookups = hits + misses;
    return lookups > 0
               ? static_cast<double>(hits) / static_cast<double>(lookups)
               : 0.0;
  };
  out += "  \"cache\": {";
  out += std::string("\"format_enabled\": ") +
         (format_cache_enabled ? "true" : "false") + ", ";
  out += "\"format_hits\": " + std::to_string(format_hits) + ", ";
  out += "\"format_misses\": " + std::to_string(format_misses) + ", ";
  out += "\"format_hit_rate\": " + fmt_rate(rate(format_hits, format_misses)) +
         ", ";
  out += std::string("\"factor_enabled\": ") +
         (factor_cache_enabled ? "true" : "false") + ", ";
  out += "\"factor_hits\": " + std::to_string(factor_hits) + ", ";
  out += "\"factor_misses\": " + std::to_string(factor_misses) + ", ";
  out += "\"factor_load_reuses\": " + std::to_string(factor_load_reuses) +
         ", ";
  out += "\"factor_ttl_evictions\": " + std::to_string(factor_ttl_evictions) +
         ", ";
  out += "\"factor_hit_rate\": " + fmt_rate(rate(factor_hits, factor_misses)) +
         "},\n";
  out += "  \"tenants\": [";
  for (size_t i = 0; i < tenants.size(); ++i) {
    const TenantSummary& t = tenants[i];
    if (i > 0) out += ", ";
    out += "{\"tenant\": \"" + json_escape(t.tenant) + "\"";
    out += ", \"weight\": " + std::to_string(t.weight);
    out += ", \"jobs\": " + std::to_string(t.jobs);
    out += ", \"ok\": " + std::to_string(t.ok);
    out += ", \"rejected\": " + std::to_string(t.rejected);
    out += ", \"timed_out\": " + std::to_string(t.timed_out);
    out += ", \"faulted\": " + std::to_string(t.faulted);
    out += ", \"errors\": " + std::to_string(t.errors);
    out += ", \"share\": " + fmt_rate(t.share) + "}";
  }
  out += "],\n";
  out += "  \"window_jobs\": " + std::to_string(window_jobs) + ",\n";
  out += "  \"windows\": [";
  for (size_t i = 0; i < windows.size(); ++i) {
    const ServeWindow& w = windows[i];
    if (i > 0) out += ", ";
    out += "{\"jobs\": " + std::to_string(w.jobs);
    out += ", \"wall_ms\": " + fmt_ms(w.wall_ms);
    out += ", \"jobs_per_sec\": " + fmt_ms(w.jobs_per_sec);
    out += ", \"p50_ms\": " + fmt_ms(w.p50_ms);
    out += ", \"p99_ms\": " + fmt_ms(w.p99_ms);
    out += ", \"format_hit_rate\": " + fmt_rate(w.format_hit_rate);
    out += ", \"factor_hit_rate\": " + fmt_rate(w.factor_hit_rate);
    out += ", \"tenant_shares\": {";
    for (size_t t = 0; t < w.tenant_shares.size(); ++t) {
      if (t > 0) out += ", ";
      out += "\"" + json_escape(w.tenant_shares[t].first) +
             "\": " + fmt_rate(w.tenant_shares[t].second);
    }
    out += "}}";
  }
  out += "]";
  if (has_ablation) {
    out += ",\n  \"ablation\": {";
    out += "\"wall_ms\": " + fmt_ms(ablation_wall_ms) + ", ";
    out += "\"jobs_per_sec\": " + fmt_ms(ablation_jobs_per_sec) + ", ";
    out += "\"speedup\": " + fmt_ms(cache_speedup) + "}";
  }
  out += "\n}\n";
  return out;
}

std::string ServeSummary::render_table() const {
  std::string out;
  out += "SERVE  " + std::to_string(jobs) + " jobs in " + fmt_ms(wall_ms) +
         " ms (" + fmt_ms(jobs_per_sec) + " jobs/s)\n";
  out += "  ok .......... " + std::to_string(ok) + "\n";
  out += "  rejected .... " + std::to_string(rejected) + "\n";
  out += "  timed out ... " + std::to_string(timed_out) + "\n";
  out += "  faulted ..... " + std::to_string(faulted) + "\n";
  out += "  errors ...... " + std::to_string(errors) + "\n";
  out += "  latency ..... p50 " + fmt_ms(p50_ms) + " ms, p99 " +
         fmt_ms(p99_ms) + " ms, max " + fmt_ms(max_ms) + " ms\n";
  out += "  connections . " + std::to_string(connections);
  if (connections_failed > 0) {
    out += " (" + std::to_string(connections_failed) + " failed)";
  }
  out += "\n";
  if (format_cache_enabled) {
    out += "  fmt cache ... " + std::to_string(format_hits) + " hits / " +
           std::to_string(format_misses) + " misses\n";
  } else {
    out += "  fmt cache ... disabled\n";
  }
  if (factor_cache_enabled) {
    out += "  factor LRU .. " + std::to_string(factor_hits) + " hits / " +
           std::to_string(factor_misses) + " misses (" +
           std::to_string(factor_load_reuses) + " load reuses, " +
           std::to_string(factor_ttl_evictions) + " ttl evictions)\n";
  } else {
    out += "  factor LRU .. disabled\n";
  }
  for (const TenantSummary& t : tenants) {
    out += "  tenant ...... \"" + t.tenant + "\" w" +
           std::to_string(t.weight) + ": " + std::to_string(t.jobs) +
           " jobs (share " + fmt_rate(t.share) + ", ok " +
           std::to_string(t.ok) + ", rejected " + std::to_string(t.rejected) +
           ")\n";
  }
  if (!windows.empty()) {
    out += "  windows ..... " + std::to_string(windows.size()) + " x " +
           std::to_string(window_jobs) + " jobs, last " +
           fmt_ms(windows.back().jobs_per_sec) + " jobs/s (p50 " +
           fmt_ms(windows.back().p50_ms) + " ms)\n";
  }
  if (has_ablation) {
    out += "  ablation .... caches off " + fmt_ms(ablation_jobs_per_sec) +
           " jobs/s; speedup " + fmt_ms(cache_speedup) + "x\n";
  }
  return out;
}

ServeSummary serve_stdin_jsonl(std::istream& in, std::ostream& out,
                               const ServeOptions& opts) {
  Session session(opts);
  const int conn = session.add_stream_connection(out);

  std::string line;
  while (std::getline(in, line)) {
    session.submit_line(conn, line);
    // A dead downstream is a server-stopping condition; stop admitting.
    if (session.connection_failed(conn)) break;
  }

  ServeSummary summary = session.finish();
  if (summary.connections_failed > 0) {
    fail(std::string(kCodeIoWriteOutput) +
         ": cannot write job envelope to output stream");
  }
  return summary;
}

#if defined(_WIN32)

ServeSummary serve_listen(const ListenOptions&, const ServeOptions&,
                          std::string*) {
  fail("serve --listen needs POSIX sockets, unavailable on this platform");
}

#else

namespace {

// Binds listen.address ("host:port" IPv4 or "unix:/path") and returns the
// listening fd; fills `bound` with the actual address (the kernel-chosen
// port when binding port 0) and `unix_path` when the unix transport is
// used. `unix_path` is set only once *this server's* socket occupies the
// path — the caller unlinks whatever `unix_path` names on shutdown (and on
// its error paths), so filling it early would delete a file we refused to
// replace.
int bind_listener(const ListenOptions& listen, std::string& bound,
                  std::string& unix_path) {
  const std::string& addr = listen.address;
  if (addr.rfind("unix:", 0) == 0) {
    const std::string path = addr.substr(5);
    sockaddr_un sa{};
    if (path.empty() || path.size() >= sizeof(sa.sun_path)) {
      fail("serve --listen: unix socket path \"" + path +
           "\" is empty or too long");
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) fail("serve --listen: cannot create unix socket");
    sa.sun_family = AF_UNIX;
    std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
    // Replace a stale socket, but never silently delete something else
    // living at the path (a config typo must not eat a regular file).
    struct stat st;
    if (::lstat(path.c_str(), &st) == 0) {
      if (!S_ISSOCK(st.st_mode)) {
        ::close(fd);
        fail("serve --listen: \"" + path +
             "\" exists and is not a socket; refusing to replace it");
      }
      ::unlink(path.c_str());
    }
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) != 0 ||
        ::listen(fd, 64) != 0) {
      ::close(fd);
      fail("serve --listen: cannot bind \"" + addr + "\": " +
           std::strerror(errno));
    }
    bound = addr;
    unix_path = path;
    return fd;
  }

  const size_t colon = addr.rfind(':');
  if (colon == std::string::npos) {
    fail("serve --listen: want \"host:port\" or \"unix:/path\", got \"" +
         addr + "\"");
  }
  const std::string host = addr.substr(0, colon);
  const std::string port_text = addr.substr(colon + 1);
  int port = -1;
  if (!port_text.empty() &&
      port_text.find_first_not_of("0123456789") == std::string::npos &&
      port_text.size() <= 5) {
    port = std::atoi(port_text.c_str());
  }
  if (port < 0 || port > 65535) {
    fail("serve --listen: bad port in \"" + addr + "\"");
  }
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    fail("serve --listen: bad IPv4 host in \"" + addr + "\"");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("serve --listen: cannot create socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    fail("serve --listen: cannot bind \"" + addr + "\": " +
         std::strerror(errno));
  }
  sockaddr_in actual{};
  socklen_t len = sizeof actual;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) == 0) {
    char text[INET_ADDRSTRLEN] = {};
    ::inet_ntop(AF_INET, &actual.sin_addr, text, sizeof text);
    bound = std::string(text) + ":" + std::to_string(ntohs(actual.sin_port));
  } else {
    bound = addr;
  }
  return fd;
}

// One connection's reader loop: split the byte stream into lines and
// submit each one. A trailing unterminated line is still a job (exactly
// like std::getline at EOF). recv failure — a peer that died mid-stream —
// is that connection's dead pipe: mark it failed (E-IO-003 semantics) so
// its remaining bytes are never admitted and its in-flight envelopes are
// discarded, and let the rest of the session keep serving. The in-progress
// line is capped at Session::max_line_bytes(): the deck admission guards
// only see complete lines, so the transport itself must bound how much of
// an unterminated line it will buffer — overflow gets one E-RES-001
// envelope and the connection is dropped.
void reader_loop(Session& session, int conn, int fd) {
  std::string buf;
  char chunk[1 << 16];
  bool peer_error = false;
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      peer_error = true;
      break;
    }
    if (n == 0) break;  // clean EOF
    buf.append(chunk, static_cast<size_t>(n));
    size_t nl;
    while ((nl = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!session.connection_failed(conn)) session.submit_line(conn, line);
    }
    if (static_cast<std::int64_t>(buf.size()) > session.max_line_bytes() &&
        !session.connection_failed(conn)) {
      session.reject_oversize_line(
          conn, static_cast<std::int64_t>(buf.size()));
      session.mark_connection_failed(conn);
    }
    if (session.connection_failed(conn)) break;
  }
  if (peer_error) {
    session.mark_connection_failed(conn);
  } else if (!buf.empty() && !session.connection_failed(conn)) {
    session.submit_line(conn, buf);
  }
}

// Owns the listening fd and the bound unix socket path for every exit
// path out of serve_listen — the Session constructor and the on_bound
// callback can throw, and a leaked bound path would block the next bind.
struct ListenerGuard {
  int fd = -1;
  std::string unix_path;
  ~ListenerGuard() {
    if (fd >= 0) ::close(fd);
    if (!unix_path.empty()) ::unlink(unix_path.c_str());
  }
};

}  // namespace

ServeSummary serve_listen(const ListenOptions& listen,
                          const ServeOptions& opts,
                          std::string* bound_address) {
  std::string bound;
  ListenerGuard guard;
  guard.fd = bind_listener(listen, bound, guard.unix_path);
  if (bound_address != nullptr) *bound_address = bound;
  if (listen.on_bound) listen.on_bound(bound);

  Session session(opts);
  std::vector<std::thread> readers;
  std::vector<int> conn_fds;
  int accepted = 0;
  while (listen.max_connections == 0 || accepted < listen.max_connections) {
    const int fd = ::accept(guard.fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (listen.send_timeout_ms > 0) {
      // Bounds how long one blocked envelope send can park its flushing
      // thread on a peer that stopped reading; on expiry the send fails
      // and the connection is marked failed (see Connection::writing).
      timeval tv{};
      tv.tv_sec = listen.send_timeout_ms / 1000;
      tv.tv_usec = (listen.send_timeout_ms % 1000) * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    }
    ++accepted;
    conn_fds.push_back(fd);
    const int conn = session.add_socket_connection(fd);
    readers.emplace_back(
        [&session, conn, fd] { reader_loop(session, conn, fd); });
  }
  for (std::thread& t : readers) t.join();

  // Drain before closing the connection fds: admitted jobs keep flushing
  // replies to their (still-open) sockets until the last envelope lands.
  // The listening fd and unix path are released by `guard`.
  ServeSummary summary = session.finish();
  for (const int fd : conn_fds) ::close(fd);
  return summary;
}

#endif  // _WIN32

}  // namespace feio::serve
