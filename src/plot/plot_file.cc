#include "plot/plot_file.h"

namespace feio::plot {

PlotFile::PlotFile(std::string title) : title_(std::move(title)) {}

void PlotFile::line(geom::Vec2 a, geom::Vec2 b, Pen pen) {
  lines_.push_back(LineSeg{a, b, pen});
}

void PlotFile::polyline(const std::vector<geom::Vec2>& pts, Pen pen) {
  for (size_t i = 1; i < pts.size(); ++i) {
    line(pts[i - 1], pts[i], pen);
  }
}

void PlotFile::text(geom::Vec2 at, std::string s, double size) {
  labels_.push_back(Label{at, std::move(s), size});
}

geom::BBox PlotFile::bounds() const {
  geom::BBox box;
  for (const LineSeg& l : lines_) {
    box.expand(l.a);
    box.expand(l.b);
  }
  for (const Label& l : labels_) box.expand(l.at);
  return box;
}

}  // namespace feio::plot
