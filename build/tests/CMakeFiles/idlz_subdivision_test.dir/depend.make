# Empty dependencies file for idlz_subdivision_test.
# This may be replaced when dependencies are built.
