#include "feio/serve.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <istream>
#include <map>
#include <ostream>
#include <vector>

#include "cards/format_cache.h"
#include "feio/api.h"
#include "fem/assembly.h"
#include "fem/factor_cache.h"
#include "fem/solver.h"
#include "idlz/deck.h"
#include "ospl/deck.h"
#include "util/cancel.h"
#include "util/diag.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/mutex.h"
#include "util/parallel.h"
#include "util/thread_annotations.h"

namespace feio::serve {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// ---------------------------------------------------------------------------
// Job-line parsing: a flat JSON object with string / integer / bool / null
// values. Hand-rolled (the repo carries no JSON library) but strict: anything
// this parser accepts is valid JSON, and anything non-flat is rejected with
// a message instead of half-parsed.

struct Cursor {
  std::string_view s;
  size_t at = 0;

  bool eof() const { return at >= s.size(); }
  char peek() const { return s[at]; }
  void skip_ws() {
    while (!eof() && (s[at] == ' ' || s[at] == '\t' || s[at] == '\r')) ++at;
  }
};

bool parse_json_string(Cursor& c, std::string& out, std::string& error) {
  if (c.eof() || c.peek() != '"') {
    error = "expected '\"'";
    return false;
  }
  ++c.at;
  out.clear();
  while (!c.eof()) {
    const char ch = c.s[c.at++];
    if (ch == '"') return true;
    if (ch != '\\') {
      out += ch;
      continue;
    }
    if (c.eof()) break;
    const char esc = c.s[c.at++];
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (c.at + 4 > c.s.size()) {
          error = "truncated \\u escape";
          return false;
        }
        int code = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = c.s[c.at++];
          code <<= 4;
          if (h >= '0' && h <= '9') {
            code |= h - '0';
          } else if (h >= 'a' && h <= 'f') {
            code |= h - 'a' + 10;
          } else if (h >= 'A' && h <= 'F') {
            code |= h - 'A' + 10;
          } else {
            error = "bad \\u escape";
            return false;
          }
        }
        // Card decks are ASCII; anything beyond is preserved as UTF-8.
        if (code < 0x80) {
          out += static_cast<char>(code);
        } else if (code < 0x800) {
          out += static_cast<char>(0xC0 | (code >> 6));
          out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
          out += static_cast<char>(0xE0 | (code >> 12));
          out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (code & 0x3F));
        }
        break;
      }
      default:
        error = std::string("bad escape '\\") + esc + "'";
        return false;
    }
  }
  error = "unterminated string";
  return false;
}

bool parse_json_int(Cursor& c, std::int64_t& out, std::string& error) {
  bool neg = false;
  if (!c.eof() && c.peek() == '-') {
    neg = true;
    ++c.at;
  }
  if (c.eof() || c.peek() < '0' || c.peek() > '9') {
    error = "expected an integer";
    return false;
  }
  std::int64_t v = 0;
  int digits = 0;
  while (!c.eof() && c.peek() >= '0' && c.peek() <= '9') {
    if (++digits > 15) {
      error = "integer out of range";
      return false;
    }
    v = v * 10 + (c.s[c.at++] - '0');
  }
  if (!c.eof() && (c.peek() == '.' || c.peek() == 'e' || c.peek() == 'E')) {
    error = "expected an integer, got a fraction";
    return false;
  }
  out = neg ? -v : v;
  return true;
}

bool skip_literal(Cursor& c, std::string_view word) {
  if (c.s.substr(c.at, word.size()) != word) return false;
  c.at += word.size();
  return true;
}

}  // namespace

bool parse_job_line(std::string_view line, Job& job, std::string& error) {
  job = Job{};
  Cursor c{line, 0};
  c.skip_ws();
  if (c.eof() || c.peek() != '{') {
    error = "job line must be a JSON object";
    return false;
  }
  ++c.at;
  bool first = true;
  while (true) {
    c.skip_ws();
    if (!c.eof() && c.peek() == '}') {
      ++c.at;
      break;
    }
    if (!first) {
      if (c.eof() || c.peek() != ',') {
        error = "expected ',' or '}' in job object";
        return false;
      }
      ++c.at;
      c.skip_ws();
    }
    first = false;
    std::string key;
    if (!parse_json_string(c, key, error)) {
      error = "bad key: " + error;
      return false;
    }
    c.skip_ws();
    if (c.eof() || c.peek() != ':') {
      error = "expected ':' after key \"" + key + "\"";
      return false;
    }
    ++c.at;
    c.skip_ws();
    if (c.eof()) {
      error = "missing value for key \"" + key + "\"";
      return false;
    }
    if (c.peek() == '"') {
      std::string value;
      if (!parse_json_string(c, value, error)) {
        error = "bad value for \"" + key + "\": " + error;
        return false;
      }
      if (key == "id") {
        job.id = value;
      } else if (key == "pipeline") {
        job.pipeline = value;
      } else if (key == "deck") {
        job.deck = value;
      } else if (key == "fault") {
        job.fault = value;
      } else if (key == "deadline_ms") {
        error = "\"deadline_ms\" must be an integer";
        return false;
      }  // unknown string keys ignored
    } else if (c.peek() == '-' || (c.peek() >= '0' && c.peek() <= '9')) {
      std::int64_t value = 0;
      if (!parse_json_int(c, value, error)) {
        error = "bad value for \"" + key + "\": " + error;
        return false;
      }
      if (key == "deadline_ms") {
        job.deadline_ms = value;
      } else if (key == "id" || key == "pipeline" || key == "deck" ||
                 key == "fault") {
        error = "\"" + key + "\" must be a string";
        return false;
      }
    } else if (skip_literal(c, "true") || skip_literal(c, "false") ||
               skip_literal(c, "null")) {
      if (key == "deadline_ms" || key == "id" || key == "pipeline" ||
          key == "deck" || key == "fault") {
        error = "\"" + key + "\" has the wrong type";
        return false;
      }
    } else {
      error = "value for \"" + key + "\" must be flat (string or integer)";
      return false;
    }
  }
  c.skip_ws();
  if (!c.eof()) {
    error = "trailing characters after job object";
    return false;
  }
  if (job.pipeline != "idlz" && job.pipeline != "ospl" &&
      job.pipeline != "solve") {
    error = job.pipeline.empty()
                ? std::string("missing \"pipeline\" (want \"idlz\", "
                              "\"ospl\" or \"solve\")")
                : "unknown pipeline \"" + job.pipeline + "\"";
    return false;
  }
  if (job.deck.empty()) {
    error = "missing \"deck\"";
    return false;
  }
  if (job.deadline_ms < 0) {
    error = "\"deadline_ms\" must be >= 0";
    return false;
  }
  return true;
}

namespace {

// ---------------------------------------------------------------------------
// Per-job execution.

enum class JobStatus { kOk, kRejected, kTimedOut, kFaulted, kError };

const char* status_name(JobStatus s) {
  switch (s) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kRejected: return "rejected";
    case JobStatus::kTimedOut: return "timeout";
    case JobStatus::kFaulted: return "faulted";
    case JobStatus::kError: return "error";
  }
  return "error";
}

// A job's bucket, decided by the diagnostics it ended with. Deadline beats
// fault beats admission beats generic error: the most pipeline-external
// cause wins so the summary counts what actually stopped the job.
JobStatus classify(const DiagSink& sink) {
  bool rejected = false;
  bool timed_out = false;
  bool faulted = false;
  for (const Diag& d : sink.diags()) {
    if (d.severity != Severity::kError) continue;
    if (d.code == "E-RES-005") {
      timed_out = true;
    } else if (d.code == "E-RES-006") {
      faulted = true;
    } else if (d.code.rfind("E-RES-00", 0) == 0) {
      rejected = true;
    }
  }
  if (timed_out) return JobStatus::kTimedOut;
  if (faulted) return JobStatus::kFaulted;
  if (rejected) return JobStatus::kRejected;
  if (!sink.ok()) return JobStatus::kError;
  return JobStatus::kOk;
}

// One single-line kind-"job" envelope. Diagnostics are capped so a hopeless
// deck cannot blow the line up; the counts always cover everything.
std::string render_job_envelope(const std::string& id, std::int64_t seq,
                                JobStatus status, double elapsed_ms,
                                const DiagSink& sink) {
  constexpr size_t kMaxDiags = 8;
  std::string out = "{";
  out += "\"schema\": \"" + std::string(kReportSchema) + "\", ";
  out += "\"kind\": \"job\", ";
  out += "\"tool_version\": \"" + std::string(kToolVersion) + "\", ";
  out += "\"generated_by\": \"feio\", ";
  out += "\"id\": \"" + json_escape(id) + "\", ";
  out += "\"seq\": " + std::to_string(seq) + ", ";
  out += "\"status\": \"" + std::string(status_name(status)) + "\", ";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", elapsed_ms);
  out += "\"elapsed_ms\": " + std::string(buf) + ", ";
  out += "\"errors\": " + std::to_string(sink.error_count()) + ", ";
  out += "\"warnings\": " + std::to_string(sink.warning_count()) + ", ";
  out += "\"diagnostics\": [";
  size_t emitted = 0;
  for (const Diag& d : sink.diags()) {
    if (emitted == kMaxDiags) break;
    if (emitted > 0) out += ", ";
    out += "{\"severity\": \"" + std::string(severity_name(d.severity)) +
           "\", \"code\": \"" + json_escape(d.code) + "\", \"message\": \"" +
           json_escape(d.message) + "\"}";
    ++emitted;
  }
  out += "]}";
  return out;
}

// The canonical static analysis the "solve" pipeline runs on an idealized
// mesh: plane stress, unit-modulus isotropic material, every node on the
// minimum-x column clamped, a unit downward load at the maximum-x node
// (lowest index on ties). Fully determined by the mesh — two jobs with the
// same deck build bit-identical problems, which is what lets the factor
// cache key on content hashes alone.
fem::StaticSolution solve_canonical(const mesh::TriMesh& mesh,
                                    const RunOptions& ro) {
  fem::StaticProblem problem(mesh, fem::Analysis::kPlaneStress);
  problem.set_material(fem::Material::isotropic(1000.0, 0.3));
  double min_x = mesh.pos(0).x;
  double max_x = mesh.pos(0).x;
  int load_node = 0;
  for (int n = 0; n < mesh.num_nodes(); ++n) {
    const double x = mesh.pos(n).x;
    min_x = std::min(min_x, x);
    if (x > max_x) {
      max_x = x;
      load_node = n;
    }
  }
  for (int n = 0; n < mesh.num_nodes(); ++n) {
    if (mesh.pos(n).x == min_x) problem.fix(n, true, true);
  }
  problem.point_load(load_node, {0.0, -1.0});
  return fem::solve(problem, ro);
}

std::int64_t count_cards(const std::string& deck) {
  if (deck.empty()) return 0;
  std::int64_t n = 1;
  for (const char ch : deck) n += ch == '\n';
  return n;
}

struct JobOutcome {
  JobStatus status = JobStatus::kError;
  std::string envelope;
  double elapsed_ms = 0.0;
};

// One completed job as the rolling-window report sees it: when it finished
// on the session clock, how long it took, and the *cumulative* cache
// counters at that moment (windows take deltas between their boundary
// samples, which is what makes per-window hit rates exact even though the
// windows are cut after the fact).
struct JobSample {
  double done_ms = 0.0;
  double elapsed_ms = 0.0;
  std::int64_t format_hits = 0;
  std::int64_t format_misses = 0;
  std::int64_t factor_hits = 0;
  std::int64_t factor_misses = 0;
};

// Runs one admitted job start to finish on the calling (worker) thread.
// All robustness state — armed faults, guard limits, cancel token — is
// scoped to this frame, so the worker lane is pristine for the next job
// no matter how this one ends.
JobOutcome run_job(const Job& job, std::int64_t seq, const ServeOptions& opts,
                   fem::FactorCache* factor_cache) {
  const auto t0 = Clock::now();
  DiagSink sink;
  JobOutcome out;

  // Per-job fault isolation: an empty FaultScope masks any process-wide
  // armed set; the job's own spec (if any) arms inside the fresh scope.
  util::FaultScope faults;
  if (!job.fault.empty()) {
    std::string error;
    if (!faults.arm(job.fault, error)) {
      sink.error("E-SRV-001", "bad \"fault\": " + error);
      out.status = JobStatus::kError;
      out.elapsed_ms = ms_since(t0);
      out.envelope =
          render_job_envelope(job.id, seq, out.status, out.elapsed_ms, sink);
      return out;
    }
  }

  util::ScopedGuard guard(&opts.guard);

  // Deck admission before any parsing or allocation.
  if (auto rejection = util::admit_deck(
          "job \"" + job.id + "\"", count_cards(job.deck),
          static_cast<std::int64_t>(job.deck.size()), opts.guard)) {
    sink.add(*rejection);
    out.status = JobStatus::kRejected;
    out.elapsed_ms = ms_since(t0);
    out.envelope =
        render_job_envelope(job.id, seq, out.status, out.elapsed_ms, sink);
    return out;
  }

  const std::int64_t deadline_ms =
      job.deadline_ms > 0 ? job.deadline_ms : opts.default_deadline_ms;
  const util::CancelToken token{
      std::chrono::milliseconds(deadline_ms > 0 ? deadline_ms : 1)};
  const util::CancelToken no_deadline;
  const util::CancelToken* cancel =
      deadline_ms > 0 ? &token : &no_deadline;
  // The deck parsers observe the token through the thread-local current;
  // run_idlz / run_ospl re-install it from RunOptions.
  util::ScopedCancel cancel_scope(cancel);

  RunOptions ro;
  ro.cancel = cancel;
  ro.threads = 1;  // one lane per job; the pool provides the concurrency
  ro.make_plots = false;
  ro.punch = false;
  ro.factor_cache = factor_cache;  // consulted by the "solve" pipeline only

  try {
    if (job.pipeline == "idlz" || job.pipeline == "solve") {
      const std::vector<idlz::IdlzCase> cases =
          idlz::read_deck_string(job.deck, sink, "job:" + job.id);
      for (const idlz::IdlzCase& c : cases) {
        const std::optional<idlz::IdlzResult> result = run_idlz(c, sink, ro);
        if (job.pipeline == "solve" && result.has_value()) {
          // Warm-path reuse happens inside fem::solve via the session
          // factor cache; a faulted/timed-out/singular solve throws past
          // the cache insert, so it cannot poison later jobs.
          solve_canonical(result->mesh, ro);
        }
      }
    } else {
      const ospl::OsplCase c =
          ospl::read_deck_string(job.deck, sink, "job:" + job.id);
      if (sink.ok()) run_ospl(c, sink, ro);
    }
  } catch (const ResourceError& e) {
    // Thrown outside run_checked's net (deck parsing hits card.read /
    // deck.parse faults and cancel checks); same structured mapping.
    sink.error(e.code(), e.what());
  } catch (const Error& e) {
    sink.error("E-SRV-002", std::string("job failed: ") + e.what());
  } catch (const std::exception& e) {
    sink.error("E-SRV-002", std::string("internal error: ") + e.what());
  }

  out.status = classify(sink);
  out.elapsed_ms = ms_since(t0);
  out.envelope =
      render_job_envelope(job.id, seq, out.status, out.elapsed_ms, sink);
  return out;
}

std::string fmt_ms(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

// The serve loop's shared state: everything the submitting thread and the
// pool workers both touch, guarded by one output-ordering mutex. The
// annotated member functions replace what used to be lambdas ("called under
// shared.mu" comments) — lambdas cannot carry thread-safety annotations, so
// the contract is now enforced by clang instead of prose.
struct Shared {
  Shared(std::ostream& o, Clock::time_point start,
         const fem::FactorCache* factors, cards::FormatCacheStats fmt_base)
      : out(o), t0(start), factor_cache(factors), format_base(fmt_base) {}

  // The output stream is only ever written by flush_ready(), i.e. under mu.
  std::ostream& out;

  // Session clock zero and the cache sources record() samples: the
  // session-local factor cache and the process-wide FORMAT-cache baseline
  // (its counters are cumulative across sessions; samples store deltas).
  const Clock::time_point t0;
  const fem::FactorCache* const factor_cache;
  const cards::FormatCacheStats format_base;

  util::Mutex mu;
  std::condition_variable cv;
  std::map<std::int64_t, std::string> ready
      FEIO_GUARDED_BY(mu);  // seq -> envelope line
  std::int64_t next_flush FEIO_GUARDED_BY(mu) = 0;
  // Admitted jobs whose envelope is not yet recorded.
  int in_flight FEIO_GUARDED_BY(mu) = 0;
  ServeSummary summary FEIO_GUARDED_BY(mu);
  std::vector<double> latencies FEIO_GUARDED_BY(mu);
  // One entry per completion, in completion order (the order the rolling
  // windows are cut in).
  std::vector<JobSample> samples FEIO_GUARDED_BY(mu);
  bool out_failed FEIO_GUARDED_BY(mu) = false;

  // Writes every envelope whose turn has come, in input order.
  void flush_ready() FEIO_REQUIRES(mu) {
    bool wrote = false;
    for (auto it = ready.begin();
         it != ready.end() && it->first == next_flush;
         it = ready.erase(it), ++next_flush) {
      out << it->second << '\n';
      wrote = true;
    }
    if (wrote) {
      out.flush();
      if (out.fail()) out_failed = true;
    }
  }

  void record(std::int64_t seq, const JobOutcome& outcome, bool admitted)
      FEIO_EXCLUDES(mu) {
    util::MutexLock lock(mu);
    ++summary.jobs;
    switch (outcome.status) {
      case JobStatus::kOk: ++summary.ok; break;
      case JobStatus::kRejected: ++summary.rejected; break;
      case JobStatus::kTimedOut: ++summary.timed_out; break;
      case JobStatus::kFaulted: ++summary.faulted; break;
      case JobStatus::kError: ++summary.errors; break;
    }
    latencies.push_back(outcome.elapsed_ms);
    JobSample sample;
    sample.done_ms = ms_since(t0);
    sample.elapsed_ms = outcome.elapsed_ms;
    const cards::FormatCacheStats fmt = cards::format_cache_stats();
    sample.format_hits = fmt.hits - format_base.hits;
    sample.format_misses = fmt.misses - format_base.misses;
    if (factor_cache != nullptr) {
      const fem::FactorCacheStats fac = factor_cache->stats();
      sample.factor_hits = fac.hits;
      sample.factor_misses = fac.misses;
    }
    samples.push_back(sample);
    ready.emplace(seq, outcome.envelope);
    if (admitted) --in_flight;
    flush_ready();
    cv.notify_all();
  }
};

// Cuts the completion-ordered samples into rolling windows of `window_jobs`
// (last window may be short). Per-window hit rates come from the delta of
// the cumulative counters across the window's boundary samples.
std::vector<ServeWindow> cut_windows(const std::vector<JobSample>& samples,
                                     int window_jobs) {
  std::vector<ServeWindow> windows;
  if (window_jobs <= 0 || samples.empty()) return windows;
  const auto rate = [](std::int64_t hits, std::int64_t misses) {
    const std::int64_t lookups = hits + misses;
    return lookups > 0 ? static_cast<double>(hits) /
                             static_cast<double>(lookups)
                       : 0.0;
  };
  for (size_t begin = 0; begin < samples.size();
       begin += static_cast<size_t>(window_jobs)) {
    const size_t end =
        std::min(begin + static_cast<size_t>(window_jobs), samples.size());
    ServeWindow w;
    w.jobs = static_cast<std::int64_t>(end - begin);
    const double start_ms = begin == 0 ? 0.0 : samples[begin - 1].done_ms;
    w.wall_ms = samples[end - 1].done_ms - start_ms;
    w.jobs_per_sec = w.wall_ms > 0.0
                         ? 1000.0 * static_cast<double>(w.jobs) / w.wall_ms
                         : 0.0;
    std::vector<double> lat;
    lat.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) lat.push_back(samples[i].elapsed_ms);
    std::sort(lat.begin(), lat.end());
    w.p50_ms = percentile(lat, 0.50);
    w.p99_ms = percentile(lat, 0.99);
    const JobSample& last = samples[end - 1];
    const JobSample prev = begin == 0 ? JobSample{} : samples[begin - 1];
    w.format_hit_rate = rate(last.format_hits - prev.format_hits,
                             last.format_misses - prev.format_misses);
    w.factor_hit_rate = rate(last.factor_hits - prev.factor_hits,
                             last.factor_misses - prev.factor_misses);
    windows.push_back(w);
  }
  return windows;
}

}  // namespace

std::string ServeSummary::render_bench_json() const {
  std::string out = "{\n";
  out += report_header_json("bench");
  out += "  \"payload_schema\": \"feio.bench.serve/1\",\n";
  out += "  \"jobs\": " + std::to_string(jobs) + ",\n";
  out += "  \"ok\": " + std::to_string(ok) + ",\n";
  out += "  \"rejected\": " + std::to_string(rejected) + ",\n";
  out += "  \"timed_out\": " + std::to_string(timed_out) + ",\n";
  out += "  \"faulted\": " + std::to_string(faulted) + ",\n";
  out += "  \"errors\": " + std::to_string(errors) + ",\n";
  out += "  \"wall_ms\": " + fmt_ms(wall_ms) + ",\n";
  out += "  \"jobs_per_sec\": " + fmt_ms(jobs_per_sec) + ",\n";
  out += "  \"p50_ms\": " + fmt_ms(p50_ms) + ",\n";
  out += "  \"p99_ms\": " + fmt_ms(p99_ms) + ",\n";
  out += "  \"max_ms\": " + fmt_ms(max_ms) + ",\n";
  const auto rate = [](std::int64_t hits, std::int64_t misses) {
    const std::int64_t lookups = hits + misses;
    return lookups > 0
               ? static_cast<double>(hits) / static_cast<double>(lookups)
               : 0.0;
  };
  char ratebuf[32];
  out += "  \"cache\": {";
  out += "\"format_hits\": " + std::to_string(format_hits) + ", ";
  out += "\"format_misses\": " + std::to_string(format_misses) + ", ";
  std::snprintf(ratebuf, sizeof ratebuf, "%.4f",
                rate(format_hits, format_misses));
  out += "\"format_hit_rate\": " + std::string(ratebuf) + ", ";
  out += "\"factor_hits\": " + std::to_string(factor_hits) + ", ";
  out += "\"factor_misses\": " + std::to_string(factor_misses) + ", ";
  std::snprintf(ratebuf, sizeof ratebuf, "%.4f",
                rate(factor_hits, factor_misses));
  out += "\"factor_hit_rate\": " + std::string(ratebuf) + "},\n";
  out += "  \"window_jobs\": " + std::to_string(window_jobs) + ",\n";
  out += "  \"windows\": [";
  for (size_t i = 0; i < windows.size(); ++i) {
    const ServeWindow& w = windows[i];
    if (i > 0) out += ", ";
    out += "{\"jobs\": " + std::to_string(w.jobs);
    out += ", \"wall_ms\": " + fmt_ms(w.wall_ms);
    out += ", \"jobs_per_sec\": " + fmt_ms(w.jobs_per_sec);
    out += ", \"p50_ms\": " + fmt_ms(w.p50_ms);
    out += ", \"p99_ms\": " + fmt_ms(w.p99_ms);
    std::snprintf(ratebuf, sizeof ratebuf, "%.4f", w.format_hit_rate);
    out += ", \"format_hit_rate\": " + std::string(ratebuf);
    std::snprintf(ratebuf, sizeof ratebuf, "%.4f", w.factor_hit_rate);
    out += ", \"factor_hit_rate\": " + std::string(ratebuf) + "}";
  }
  out += "]";
  if (has_ablation) {
    out += ",\n  \"ablation\": {";
    out += "\"wall_ms\": " + fmt_ms(ablation_wall_ms) + ", ";
    out += "\"jobs_per_sec\": " + fmt_ms(ablation_jobs_per_sec) + ", ";
    out += "\"speedup\": " + fmt_ms(cache_speedup) + "}";
  }
  out += "\n}\n";
  return out;
}

std::string ServeSummary::render_table() const {
  std::string out;
  out += "SERVE  " + std::to_string(jobs) + " jobs in " + fmt_ms(wall_ms) +
         " ms (" + fmt_ms(jobs_per_sec) + " jobs/s)\n";
  out += "  ok .......... " + std::to_string(ok) + "\n";
  out += "  rejected .... " + std::to_string(rejected) + "\n";
  out += "  timed out ... " + std::to_string(timed_out) + "\n";
  out += "  faulted ..... " + std::to_string(faulted) + "\n";
  out += "  errors ...... " + std::to_string(errors) + "\n";
  out += "  latency ..... p50 " + fmt_ms(p50_ms) + " ms, p99 " +
         fmt_ms(p99_ms) + " ms, max " + fmt_ms(max_ms) + " ms\n";
  out += "  fmt cache ... " + std::to_string(format_hits) + " hits / " +
         std::to_string(format_misses) + " misses\n";
  out += "  factor LRU .. " + std::to_string(factor_hits) + " hits / " +
         std::to_string(factor_misses) + " misses\n";
  if (!windows.empty()) {
    out += "  windows ..... " + std::to_string(windows.size()) + " x " +
           std::to_string(window_jobs) + " jobs, last " +
           fmt_ms(windows.back().jobs_per_sec) + " jobs/s (p50 " +
           fmt_ms(windows.back().p50_ms) + " ms)\n";
  }
  if (has_ablation) {
    out += "  ablation .... caches off " + fmt_ms(ablation_jobs_per_sec) +
           " jobs/s; speedup " + fmt_ms(cache_speedup) + "x\n";
  }
  return out;
}

ServeSummary serve_stdin_jsonl(std::istream& in, std::ostream& out,
                               const ServeOptions& opts) {
  util::ScopedTracerInstall tracer_scope(opts.tracer);
  util::ScopedMetricsInstall metrics_scope(opts.metrics);

  const int workers = std::max(1, util::resolve_threads(opts.threads));
  const int capacity = std::max(1, opts.queue_capacity);
  util::ThreadPool pool(workers);

  // Session caches: the FORMAT intern cache is process-wide (rebound to the
  // requested capacity; stats are read as deltas from here), the factor LRU
  // is session-local and shared by every worker. Capacity 0 disables.
  cards::set_format_cache_capacity(
      static_cast<std::size_t>(std::max(0, opts.format_cache_capacity)));
  const cards::FormatCacheStats format_base = cards::format_cache_stats();
  fem::FactorCache factor_cache(
      static_cast<std::size_t>(std::max(0, opts.factor_cache_capacity)));
  fem::FactorCache* const factors =
      opts.factor_cache_capacity > 0 ? &factor_cache : nullptr;

  const auto t0 = Clock::now();
  Shared shared(out, t0, factors, format_base);

  std::string line;
  std::int64_t seq = 0;
  while (std::getline(in, line)) {
    const std::int64_t this_seq = seq++;
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      // A blank line keeps its slot in the output order (a consumer pairing
      // envelopes to input lines must never desynchronize) but carries no
      // job: an immediate E-SRV-001 envelope.
      DiagSink sink;
      sink.error("E-SRV-001", "blank job line");
      JobOutcome outcome;
      outcome.status = JobStatus::kError;
      outcome.envelope =
          render_job_envelope("job-" + std::to_string(this_seq), this_seq,
                              outcome.status, 0.0, sink);
      shared.record(this_seq, outcome, /*admitted=*/false);
    } else {
      bool admitted = false;
      {
        util::MutexLock lock(shared.mu);
        if (shared.in_flight < capacity) {
          ++shared.in_flight;
          admitted = true;
        }
      }
      if (!admitted) {
        // Queue-full rejection: never started, but still one envelope in
        // order so the stream stays lockstep with its input.
        DiagSink sink;
        sink.error("E-RES-004",
                   "admission queue full (" + std::to_string(capacity) +
                       " jobs in flight); job rejected");
        JobOutcome outcome;
        outcome.status = JobStatus::kRejected;
        outcome.envelope =
            render_job_envelope("job-" + std::to_string(this_seq), this_seq,
                                outcome.status, 0.0, sink);
        shared.record(this_seq, outcome, /*admitted=*/false);
      } else {
        pool.post([&opts, &shared, this_seq, line, factors] {
          Job job;
          std::string error;
          JobOutcome outcome;
          if (!parse_job_line(line, job, error)) {
            DiagSink sink;
            sink.error("E-SRV-001", "malformed job line: " + error);
            outcome.status = JobStatus::kError;
            outcome.envelope = render_job_envelope(
                job.id.empty() ? "job-" + std::to_string(this_seq) : job.id,
                this_seq, outcome.status, 0.0, sink);
          } else {
            if (job.id.empty()) job.id = "job-" + std::to_string(this_seq);
            outcome = run_job(job, this_seq, opts, factors);
          }
          shared.record(this_seq, outcome, /*admitted=*/true);
        });
      }
    }
    // A dead downstream is a server-stopping condition; stop admitting.
    {
      util::MutexLock lock(shared.mu);
      if (shared.out_failed) break;
    }
  }

  // Drain: every admitted job delivers its envelope (even after an output
  // failure — workers must never be abandoned mid-run). The final state is
  // copied out under the same critical section: once in_flight hits zero no
  // worker can touch it again, but the lock makes that proof local instead
  // of an argument about the whole function.
  bool out_failed = false;
  ServeSummary summary;
  std::vector<double> latencies;
  std::vector<JobSample> samples;
  {
    util::MutexLock lock(shared.mu);
    while (shared.in_flight != 0) lock.wait(shared.cv);
    shared.flush_ready();
    out_failed = shared.out_failed;
    summary = shared.summary;
    latencies = std::move(shared.latencies);
    samples = std::move(shared.samples);
  }

  if (out_failed) {
    fail(std::string(kCodeIoWriteOutput) +
         ": cannot write job envelope to output stream");
  }

  summary.wall_ms = ms_since(t0);
  summary.jobs_per_sec =
      summary.wall_ms > 0.0
          ? 1000.0 * static_cast<double>(summary.jobs) / summary.wall_ms
          : 0.0;
  std::sort(latencies.begin(), latencies.end());
  summary.p50_ms = percentile(latencies, 0.50);
  summary.p99_ms = percentile(latencies, 0.99);
  summary.max_ms = latencies.empty() ? 0.0 : latencies.back();

  const cards::FormatCacheStats format_end = cards::format_cache_stats();
  summary.format_hits = format_end.hits - format_base.hits;
  summary.format_misses = format_end.misses - format_base.misses;
  if (factors != nullptr) {
    const fem::FactorCacheStats fac = factors->stats();
    summary.factor_hits = fac.hits;
    summary.factor_misses = fac.misses;
  }
  summary.window_jobs = std::max(0, opts.window_jobs);
  summary.windows = cut_windows(samples, opts.window_jobs);
  return summary;
}

}  // namespace feio::serve
