#include "idlz/deck.h"

#include <sstream>

#include "cards/card_io.h"
#include "cards/format_cache.h"
#include "idlz/punch.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/metrics.h"
#include "util/strings.h"
#include "util/trace.h"

namespace feio::idlz {
namespace {

using cards::as_alpha;
using cards::as_int;
using cards::as_real;
using cards::CardReader;
using cards::CardWriter;
using cards::Format;

// Structural sanity caps: a count outside these cannot come from a valid
// deck, and trusting it would desynchronize (or unboundedly grow) the parse.
constexpr long kMaxSets = 10000;
constexpr long kMaxSubdivisionsPerSet = 1000;
constexpr long kMaxLinesPerSubdivision = 100000;

const Format& fmt_i5() {
  static const Format f = Format::parse("(I5)");
  return f;
}
const Format& fmt_title() {
  static const Format f = Format::parse("(12A6)");
  return f;
}
const Format& fmt_type3() {
  static const Format f = Format::parse("(4I5)");
  return f;
}
const Format& fmt_type4() {
  static const Format f = Format::parse("(5I5,5X,2I5)");
  return f;
}
const Format& fmt_type5() {
  static const Format f = Format::parse("(2I5)");
  return f;
}
const Format& fmt_type6() {
  static const Format f = Format::parse("(4I5,5F8.4)");
  return f;
}

std::string join_title(const std::vector<cards::Field>& fields) {
  std::string title;
  for (const auto& f : fields) title += as_alpha(f);
  return std::string(trim(title));
}

// Reads a type-7 FORMAT card; malformed user FORMATs are diagnosed
// (E-FMT-001, or the precise E-CARD-006 for degenerate descriptors) and
// replaced by `fallback` so the set stays usable. Valid FORMATs are parsed
// through the intern cache, warming it for the punch stage.
bool read_format_card(CardReader& reader, DiagSink& sink,
                      const char* fallback, std::string& out) {
  const auto fields = reader.try_read(fmt_title(), sink);
  if (!fields) return false;
  out = join_title(*fields);
  if (out.empty()) {
    out = fallback;
    return true;
  }
  try {
    cards::parse_format_cached(out);
  } catch (const ResourceError& e) {
    // Degenerate descriptors (zero repeats/widths) carry their own stable
    // code; surface it instead of the generic bad-FORMAT one.
    sink.error(e.code(),
               std::string(e.what()) + " in user FORMAT '" + out + "'",
               reader.loc());
    out = fallback;
  } catch (const Error& e) {
    sink.error("E-FMT-001",
               std::string(e.what()) + " in user FORMAT '" + out + "'",
               reader.loc());
    out = fallback;
  }
  return true;
}

}  // namespace

std::vector<IdlzCase> read_deck(std::istream& in, DiagSink& sink,
                                const std::string& deck_name) {
  FEIO_TRACE_SPAN(span, "idlz.read_deck");
  span.arg("deck", deck_name);
  CardReader reader(in, deck_name);
  std::vector<IdlzCase> cases;
  // Count whatever was parsed on every exit path, including recovery exits.
  struct CountOnExit {
    const std::vector<IdlzCase>& cases;
    const CardReader& reader;
    util::TraceSpan& span;
    ~CountOnExit() {
      FEIO_METRIC_ADD("idlz.cases_read",
                      static_cast<std::int64_t>(cases.size()));
      FEIO_METRIC_ADD("idlz.cards_read", reader.card_number());
      span.arg("cases", static_cast<std::int64_t>(cases.size()));
      span.arg("cards", reader.card_number());
    }
  } count_on_exit{cases, reader, span};

  const auto t1 = reader.try_read(fmt_i5(), sink);
  if (!t1) return cases;
  const long nset = as_int((*t1)[0]);
  if (nset < 1 || nset > kMaxSets) {
    sink.error("E-IDLZ-001",
               "NSET must be in 1.." + std::to_string(kMaxSets) + ", got " +
                   std::to_string(nset),
               reader.loc());
    return cases;
  }

  cases.reserve(static_cast<size_t>(nset));
  for (long set = 0; set < nset; ++set) {
    if (sink.capped()) {
      sink.note("N-DIAG-001",
                "diagnostic cap reached; remaining cards not examined",
                reader.loc());
      return cases;
    }
    IdlzCase c;
    c.deck_name = deck_name;
    FEIO_FAULT("deck.parse");
    const auto title = reader.try_read(fmt_title(), sink);
    if (!title) return cases;
    c.title = join_title(*title);

    const auto t3 = reader.try_read(fmt_type3(), sink);
    if (!t3) return cases;
    c.options.make_plots = as_int((*t3)[0]) != 0;
    c.options.renumber_nodes = as_int((*t3)[1]) != 0;
    c.options.punch_output = as_int((*t3)[2]) != 0;
    const long nsbdvn = as_int((*t3)[3]);
    if (nsbdvn < 1 || nsbdvn > kMaxSubdivisionsPerSet) {
      sink.error("E-IDLZ-002",
                 "NSBDVN must be in 1.." +
                     std::to_string(kMaxSubdivisionsPerSet) + ", got " +
                     std::to_string(nsbdvn),
                 reader.loc());
      sink.note("N-IDLZ-001",
                "cannot locate the remaining cards of this set; deck "
                "abandoned",
                reader.loc());
      return cases;
    }

    for (long i = 0; i < nsbdvn; ++i) {
      const auto t4 = reader.try_read(fmt_type4(), sink);
      if (!t4) return cases;
      Subdivision s;
      s.id = static_cast<int>(as_int((*t4)[0]));
      s.k1 = static_cast<int>(as_int((*t4)[1]));
      s.l1 = static_cast<int>(as_int((*t4)[2]));
      s.k2 = static_cast<int>(as_int((*t4)[3]));
      s.l2 = static_cast<int>(as_int((*t4)[4]));
      s.ntaprw = static_cast<int>(as_int((*t4)[5]));
      s.ntapcm = static_cast<int>(as_int((*t4)[6]));
      s.card = reader.card_number();
      try {
        s.validate();
      } catch (const Error& e) {
        sink.error("E-IDLZ-004", e.what(), reader.loc());
      }
      c.subdivisions.push_back(s);
    }

    for (long i = 0; i < nsbdvn; ++i) {
      const auto t5 = reader.try_read(fmt_type5(), sink);
      if (!t5) return cases;
      ShapingSpec spec;
      spec.subdivision_id = static_cast<int>(as_int((*t5)[0]));
      spec.card = reader.card_number();
      bool known = false;
      for (const Subdivision& s : c.subdivisions) {
        if (s.id == spec.subdivision_id) known = true;
      }
      if (!known) {
        sink.error("E-IDLZ-005",
                   "shaping cards name unknown subdivision " +
                       std::to_string(spec.subdivision_id),
                   reader.loc());
      }
      const long nlines = as_int((*t5)[1]);
      if (nlines < 1 || nlines > kMaxLinesPerSubdivision) {
        sink.error("E-IDLZ-003",
                   "at least one line segment must be used to deform each "
                   "subdivision (General Restriction 3); got NLINES " +
                       std::to_string(nlines),
                   reader.loc());
        // Resynchronize at the next type-5 card: read no type-6 cards.
        continue;
      }
      for (long j = 0; j < nlines; ++j) {
        const auto t6 = reader.try_read(fmt_type6(), sink);
        if (!t6) return cases;
        ShapeLine line;
        line.k1 = static_cast<int>(as_int((*t6)[0]));
        line.l1 = static_cast<int>(as_int((*t6)[1]));
        line.k2 = static_cast<int>(as_int((*t6)[2]));
        line.l2 = static_cast<int>(as_int((*t6)[3]));
        line.p1 = {as_real((*t6)[4]), as_real((*t6)[5])};
        line.p2 = {as_real((*t6)[6]), as_real((*t6)[7])};
        line.radius = as_real((*t6)[8]);
        line.card = reader.card_number();
        spec.lines.push_back(line);
      }
      c.shaping.push_back(std::move(spec));
    }

    if (!read_format_card(reader, sink, kDefaultNodalFormat,
                          c.options.nodal_format)) {
      return cases;
    }
    c.options.nodal_format_card = reader.card_number();
    if (!read_format_card(reader, sink, kDefaultElementFormat,
                          c.options.element_format)) {
      return cases;
    }
    c.options.element_format_card = reader.card_number();
    cases.push_back(std::move(c));
  }
  return cases;
}

std::vector<IdlzCase> read_deck(std::istream& in) {
  DiagSink sink;
  auto cases = read_deck(in, sink);
  sink.throw_if_errors();
  return cases;
}

std::vector<IdlzCase> read_deck_string(const std::string& deck) {
  std::istringstream in(deck);
  return read_deck(in);
}

std::vector<IdlzCase> read_deck_string(const std::string& deck,
                                       DiagSink& sink,
                                       const std::string& deck_name) {
  std::istringstream in(deck);
  return read_deck(in, sink, deck_name);
}

std::string write_deck(const std::vector<IdlzCase>& cases) {
  CardWriter out;
  out.write({static_cast<long>(cases.size())}, fmt_i5());
  for (const IdlzCase& c : cases) {
    out.write_raw(c.title);
    out.write({static_cast<long>(c.options.make_plots ? 1 : 0),
               static_cast<long>(c.options.renumber_nodes ? 1 : 0),
               static_cast<long>(c.options.punch_output ? 1 : 0),
               static_cast<long>(c.subdivisions.size())},
              fmt_type3());
    for (const Subdivision& s : c.subdivisions) {
      out.write({static_cast<long>(s.id), static_cast<long>(s.k1),
                 static_cast<long>(s.l1), static_cast<long>(s.k2),
                 static_cast<long>(s.l2), static_cast<long>(s.ntaprw),
                 static_cast<long>(s.ntapcm)},
                fmt_type4());
    }
    for (const ShapingSpec& spec : c.shaping) {
      out.write({static_cast<long>(spec.subdivision_id),
                 static_cast<long>(spec.lines.size())},
                fmt_type5());
      for (const ShapeLine& l : spec.lines) {
        out.write({static_cast<long>(l.k1), static_cast<long>(l.l1),
                   static_cast<long>(l.k2), static_cast<long>(l.l2), l.p1.x,
                   l.p1.y, l.p2.x, l.p2.y, l.radius},
                  fmt_type6());
      }
    }
    out.write_raw(c.options.nodal_format);
    out.write_raw(c.options.element_format);
  }
  return out.str();
}

}  // namespace feio::idlz
