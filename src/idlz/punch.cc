#include "idlz/punch.h"

#include "cards/card_io.h"
#include "util/error.h"

namespace feio::idlz {

std::string punch_nodal_cards(const mesh::TriMesh& mesh,
                              const std::string& format) {
  const cards::Format fmt = cards::Format::parse(format);
  FEIO_REQUIRE(fmt.field_count() == 4,
               "nodal card FORMAT must carry 4 fields (X, Y, boundary, "
               "node number); got " +
                   std::to_string(fmt.field_count()));
  cards::CardWriter out;
  for (int i = 0; i < mesh.num_nodes(); ++i) {
    const mesh::Node& n = mesh.node(i);
    out.write({n.pos.x, n.pos.y,
               static_cast<long>(static_cast<int>(n.boundary)),
               static_cast<long>(i + 1)},
              fmt);
  }
  return out.str();
}

std::string punch_element_cards(const mesh::TriMesh& mesh,
                                const std::string& format) {
  const cards::Format fmt = cards::Format::parse(format);
  FEIO_REQUIRE(fmt.field_count() == 4,
               "element card FORMAT must carry 4 fields (3 node numbers + "
               "element number); got " +
                   std::to_string(fmt.field_count()));
  cards::CardWriter out;
  for (int e = 0; e < mesh.num_elements(); ++e) {
    const mesh::Element& el = mesh.element(e);
    out.write({static_cast<long>(el.n[0] + 1), static_cast<long>(el.n[1] + 1),
               static_cast<long>(el.n[2] + 1), static_cast<long>(e + 1)},
              fmt);
  }
  return out.str();
}

}  // namespace feio::idlz
