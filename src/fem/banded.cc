#include "fem/banded.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/cancel.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/guard.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/trace.h"

namespace feio::fem {

BandedMatrix::BandedMatrix(int n, int half_bandwidth)
    : n_(n), hbw_(half_bandwidth) {
  FEIO_REQUIRE(n >= 1, "matrix size must be positive");
  FEIO_REQUIRE(half_bandwidth >= 0, "half-bandwidth must be non-negative");
  hbw_ = std::min(hbw_, n_ - 1);
  // Guard before the one big allocation of the solve: band storage is the
  // factor's exact footprint, n * (hbw + 1) doubles. The estimate goes
  // through the overflow-checked helper so a huge (n, hbw) pair trips
  // E-RES-003 instead of wrapping past the limit.
  util::guard_check_factor_bytes(util::checked_factor_bytes(n_, hbw_),
                                 "banded factor storage bytes");
  FEIO_FAULT("fem.alloc");
  band_.assign(static_cast<size_t>(n_) * (hbw_ + 1), 0.0);
}

BandedMatrix BandedMatrix::adopt_factor(int n, int half_bandwidth,
                                        std::vector<double> band) {
  BandedMatrix m(n, half_bandwidth);
  FEIO_ASSERT(band.size() == m.band_.size());
  m.band_ = std::move(band);
  m.factorized_ = true;
  return m;
}

double& BandedMatrix::slot(int i, int j) {
  return band_[static_cast<size_t>(i) * (hbw_ + 1) + static_cast<size_t>(i - j)];
}

const double& BandedMatrix::slot(int i, int j) const {
  return band_[static_cast<size_t>(i) * (hbw_ + 1) + static_cast<size_t>(i - j)];
}

double BandedMatrix::get(int i, int j) const {
  if (i < j) std::swap(i, j);
  if (i - j > hbw_) return 0.0;
  return slot(i, j);
}

void BandedMatrix::set(int i, int j, double v) {
  if (i < j) std::swap(i, j);
  FEIO_ASSERT(i - j <= hbw_);
  slot(i, j) = v;
}

void BandedMatrix::add(int i, int j, double v) {
  if (i < j) std::swap(i, j);
  FEIO_ASSERT(i - j <= hbw_);
  slot(i, j) += v;
}

void BandedMatrix::apply_dirichlet(int i, double value,
                                   std::vector<double>& rhs,
                                   std::vector<DirichletRhsOp>* record) {
  FEIO_ASSERT(!factorized_);
  FEIO_ASSERT(static_cast<int>(rhs.size()) == n_);
  const int lo = std::max(0, i - hbw_);
  const int hi = std::min(n_ - 1, i + hbw_);
  for (int j = lo; j <= hi; ++j) {
    if (j == i) continue;
    const double a = get(i, j);
    if (a != 0.0) {
      rhs[static_cast<size_t>(j)] -= a * value;
      set(i, j, 0.0);
      if (record != nullptr) record->push_back({j, a, value, false});
    }
  }
  set(i, i, 1.0);
  rhs[static_cast<size_t>(i)] = value;
  if (record != nullptr) record->push_back({i, 0.0, value, true});
}

void BandedMatrix::multiply(const std::vector<double>& x,
                            std::vector<double>& y) const {
  FEIO_ASSERT(!factorized_);
  FEIO_ASSERT(static_cast<int>(x.size()) == n_);
  y.assign(static_cast<size_t>(n_), 0.0);
  for (int i = 0; i < n_; ++i) {
    const int lo = std::max(0, i - hbw_);
    double acc = slot(i, i) * x[static_cast<size_t>(i)];
    for (int j = lo; j < i; ++j) {
      const double a = slot(i, j);
      acc += a * x[static_cast<size_t>(j)];
      y[static_cast<size_t>(j)] += a * x[static_cast<size_t>(i)];
    }
    y[static_cast<size_t>(i)] += acc;
  }
}

void BandedMatrix::factorize() {
  FEIO_ASSERT(!factorized_);
  FEIO_TRACE_SPAN(span, "fem.factorize");
  span.arg("n", n_);
  span.arg("half_bandwidth", hbw_);
  // Pivot tolerance relative to the matrix scale: a pivot this small means
  // the system is singular to working precision (usually a structure with
  // an unconstrained rigid-body mode).
  double max_diag = 0.0;
  for (int j = 0; j < n_; ++j) max_diag = std::max(max_diag, slot(j, j));
  const double tol = 1e-12 * std::max(max_diag, 1e-300);

  // LDL^T restricted to the band: L unit lower-triangular stored in the
  // strictly-lower band slots, D on the diagonal slots.
  //
  // Narrow bands use the plain left-looking column sweep: there is no
  // parallelism worth extracting from a handful of in-band neighbours, and
  // the blocked path below needs hbw/2-wide panels to amortize its serial
  // diagonal block. The choice depends ONLY on (n, hbw) — never on the
  // thread count — so a given matrix always takes the same code path and
  // produces bitwise-identical factors at any thread setting.
  if (hbw_ < 16) {
    for (int j = 0; j < n_; ++j) {
      // Coarse enough to stay off profiles: one thread-local load per 128
      // columns of a cheap narrow-band sweep.
      if ((j & 127) == 0) FEIO_CHECK_CANCEL("fem.factorize.column");
      double d = slot(j, j);
      const int lo = std::max(0, j - hbw_);
      for (int k = lo; k < j; ++k) {
        const double ljk = slot(j, k);
        d -= ljk * ljk * slot(k, k);
      }
      FEIO_REQUIRE(d > tol,
                   "non-positive pivot at equation " + std::to_string(j) +
                       " (structure under-constrained or matrix indefinite)");
      slot(j, j) = d;

      const int hi = std::min(n_ - 1, j + hbw_);
      for (int i = j + 1; i <= hi; ++i) {
        double lij = slot(i, j);
        const int klo = std::max({0, i - hbw_, j - hbw_});
        for (int k = klo; k < j; ++k) {
          lij -= slot(i, k) * slot(j, k) * slot(k, k);
        }
        slot(i, j) = lij / d;
      }
    }
    factorized_ = true;
    return;
  }

  // Blocked right-looking factorization in column panels of width B
  // (LAPACK pbtrf-style). Per panel [p0, p1):
  //   1. factor the diagonal block serially (B columns, in-panel sums only);
  //   2. solve the off-diagonal block rows [p1, p1-1+hbw] against the
  //      panel's unit-lower columns — rows are independent, split across
  //      threads by util::parallel_chunks;
  //   3. apply the symmetric trailing update to columns [p1, p1-1+hbw] —
  //      columns are independent (distinct band slots), split likewise.
  // The serial fraction is ~B^2 / (3 hbw^2); B = hbw/2 capped at 64 keeps
  // it near 1/12 while the panel still fills cache lines.
  //
  // Determinism: every entry's update sum runs over k ascending within a
  // fixed panel partition that depends only on (n, hbw, B). Chunk
  // boundaries move work between threads but never reorder or resplit any
  // entry's summation, so factors are bit-identical for any thread count.
  const int B = std::max(8, std::min(64, hbw_ / 2));
  for (int p0 = 0; p0 < n_; p0 += B) {
    FEIO_CHECK_CANCEL("fem.factorize.panel");
    FEIO_FAULT("fem.factorize.panel");
    const int p1 = std::min(n_, p0 + B);
    FEIO_METRIC_ADD("fem.factorize.panels", 1);

    // Phase 1: diagonal block.
    for (int j = p0; j < p1; ++j) {
      double d = slot(j, j);
      const int lo = std::max(p0, j - hbw_);
      for (int k = lo; k < j; ++k) {
        const double ljk = slot(j, k);
        d -= ljk * ljk * slot(k, k);
      }
      FEIO_REQUIRE(d > tol,
                   "non-positive pivot at equation " + std::to_string(j) +
                       " (structure under-constrained or matrix indefinite)");
      slot(j, j) = d;

      for (int i = j + 1; i < p1; ++i) {
        double lij = slot(i, j);
        const int klo = std::max(p0, i - hbw_);
        for (int k = klo; k < j; ++k) {
          lij -= slot(i, k) * slot(j, k) * slot(k, k);
        }
        slot(i, j) = lij / d;
      }
    }

    const int row_end = std::min(n_ - 1, p1 - 1 + hbw_);
    const int nrows = row_end - p1 + 1;
    if (nrows <= 0) continue;

    // Phase 2: off-diagonal block row solve, one independent row per item.
    util::parallel_chunks(
        nrows, util::chunk_count(nrows, 0),
        [&](int /*chunk*/, std::int64_t begin, std::int64_t end) {
          for (std::int64_t r = begin; r < end; ++r) {
            const int i = p1 + static_cast<int>(r);
            const int jlo = std::max(p0, i - hbw_);
            for (int j = jlo; j < p1; ++j) {
              double lij = slot(i, j);
              for (int k = jlo; k < j; ++k) {
                lij -= slot(i, k) * slot(j, k) * slot(k, k);
              }
              slot(i, j) = lij / slot(j, j);
            }
          }
        });

    // Phase 3: trailing update, one independent column per item. Each
    // (i, j) with i >= j in [p1, row_end] maps to a unique band slot, so
    // partitioning by column j is race-free.
    util::parallel_chunks(
        nrows, util::chunk_count(nrows, 0),
        [&](int /*chunk*/, std::int64_t begin, std::int64_t end) {
          for (std::int64_t c = begin; c < end; ++c) {
            const int j = p1 + static_cast<int>(c);
            const int klo_j = std::max(p0, j - hbw_);
            for (int i = j; i <= row_end; ++i) {
              const int klo = std::max(klo_j, i - hbw_);
              double acc = 0.0;
              for (int k = klo; k < p1; ++k) {
                acc += slot(i, k) * slot(j, k) * slot(k, k);
              }
              slot(i, j) -= acc;
            }
          }
        });
  }
  factorized_ = true;
}

void BandedMatrix::solve(std::vector<double>& rhs) const {
  FEIO_ASSERT(factorized_);
  FEIO_ASSERT(static_cast<int>(rhs.size()) == n_);
  FEIO_TRACE_SPAN(span, "fem.solve");
  span.arg("n", n_);
  // Forward substitution: L y = rhs.
  for (int i = 0; i < n_; ++i) {
    const int lo = std::max(0, i - hbw_);
    double y = rhs[static_cast<size_t>(i)];
    for (int k = lo; k < i; ++k) {
      y -= slot(i, k) * rhs[static_cast<size_t>(k)];
    }
    rhs[static_cast<size_t>(i)] = y;
  }
  // Diagonal: z = D^-1 y.
  for (int i = 0; i < n_; ++i) {
    rhs[static_cast<size_t>(i)] /= slot(i, i);
  }
  // Back substitution: L^T x = z.
  for (int i = n_ - 1; i >= 0; --i) {
    const int hi = std::min(n_ - 1, i + hbw_);
    double x = rhs[static_cast<size_t>(i)];
    for (int k = i + 1; k <= hi; ++k) {
      x -= slot(k, i) * rhs[static_cast<size_t>(k)];
    }
    rhs[static_cast<size_t>(i)] = x;
  }
}

}  // namespace feio::fem
