// Ablations of the design choices the paper motivates but never measures:
//
//   A1 (claim C6) - node renumbering: "the size of the coefficient matrix
//       bandwidth ... is directly related to the numbering scheme". We
//       measure bandwidth, banded storage, and LDL^T factor+solve time of
//       the Figure 9 hatch analysis under the assembly numbering vs
//       Cuthill-McKee vs Reverse Cuthill-McKee.
//   A2 - element reform: min-angle population with the reform pass on/off.
//   A3 - automatic vs fixed contour interval: isogram and label counts.
#include <cstdio>

#include <benchmark/benchmark.h>

#include "fem/solver.h"
#include "idlz/idlz.h"
#include "idlz/smooth.h"
#include "mesh/bandwidth.h"
#include "mesh/quality.h"
#include "ospl/ospl.h"
#include "scenarios/scenarios.h"

using namespace feio;

namespace {

// The stiffened cylinder (Figure 15) is the case where the "arbitrary"
// assembly-order numbering hurts most: the ring stiffeners are numbered
// after the whole shell, coupling low node numbers to high ones.
idlz::IdlzResult cylinder_with(bool renumber, idlz::NumberingScheme scheme) {
  idlz::IdlzCase c = scenarios::fig15_cylinder_closure(true);
  c.options.renumber_nodes = renumber;
  c.options.scheme = scheme;
  return idlz::run(c);
}

fem::StaticProblem cylinder_problem(const mesh::TriMesh& mesh) {
  fem::StaticProblem prob(mesh, fem::Analysis::kAxisymmetric);
  prob.set_material(fem::Material::isotropic(16.5e6, 0.31));
  for (int n = 0; n < mesh.num_nodes(); ++n) {
    const geom::Vec2 p = mesh.pos(n);
    if (std::abs(p.y) < 1e-9) prob.fix(n, false, true);
    if (std::abs(p.x) < 1e-9) prob.fix(n, true, false);
  }
  return prob;
}

void print_report() {
  std::printf(
      "==== A1: numbering scheme ablation (Figure 15 stiffened mesh) ====\n");
  std::printf("%-22s %10s %10s %12s\n", "scheme", "bandwidth", "profile",
              "band doubles");
  struct Variant {
    const char* name;
    bool renumber;
    idlz::NumberingScheme scheme;
  };
  const Variant variants[] = {
      {"assembly order", false, idlz::NumberingScheme::kBest},
      {"Cuthill-McKee", true, idlz::NumberingScheme::kCuthillMcKee},
      {"Reverse Cuthill-McKee", true,
       idlz::NumberingScheme::kReverseCuthillMcKee},
  };
  for (const Variant& v : variants) {
    const idlz::IdlzResult r = cylinder_with(v.renumber, v.scheme);
    const int bw = mesh::bandwidth(r.mesh);
    const fem::StaticProblem prob = cylinder_problem(r.mesh);
    const fem::BandedMatrix k(prob.num_dofs(), prob.dof_half_bandwidth());
    std::printf("%-22s %10d %10ld %12zu\n", v.name, bw, mesh::profile(r.mesh),
                k.storage());
  }
  std::printf("(factor+solve timings below; cost scales with n*bw^2)\n\n");

  std::printf("==== A2: element reform ablation ====\n");
  std::printf("%-8s %18s %18s %14s\n", "figure", "min angle off/on",
              "mean angle off/on", "needles off/on");
  for (const char* id : {"fig09", "fig10", "fig06"}) {
    idlz::IdlzCase c;
    for (const auto& nc : scenarios::all_idealizations()) {
      if (nc.id == id) c = nc.c;
    }
    c.options.reform_elements = false;
    const auto off = mesh::summarize_quality(idlz::run(c).mesh);
    c.options.reform_elements = true;
    const auto on = mesh::summarize_quality(idlz::run(c).mesh);
    std::printf("%-8s %8.1f / %-8.1f %8.1f / %-8.1f %6d / %-6d\n", id,
                off.min_angle_rad * 57.2958, on.min_angle_rad * 57.2958,
                off.mean_min_angle_rad * 57.2958,
                on.mean_min_angle_rad * 57.2958, off.needle_count,
                on.needle_count);
  }
  std::printf(
      "\n==== A2a: diagonal style at element creation (before reform) "
      "====\n");
  std::printf("%-8s %22s %22s\n", "figure", "mean angle unif/altern",
              "needles unif/altern");
  for (const char* id : {"fig02", "fig09", "fig15"}) {
    idlz::IdlzCase c;
    for (const auto& nc : scenarios::all_idealizations()) {
      if (nc.id == id) c = nc.c;
    }
    c.options.reform_elements = false;  // isolate the creation pattern
    c.options.diagonals = idlz::DiagonalStyle::kUniform;
    const auto uni = mesh::summarize_quality(idlz::run(c).mesh);
    c.options.diagonals = idlz::DiagonalStyle::kAlternating;
    const auto alt = mesh::summarize_quality(idlz::run(c).mesh);
    std::printf("%-8s %10.1f / %-10.1f %9d / %-9d\n", id,
                uni.mean_min_angle_rad * 57.2958,
                alt.mean_min_angle_rad * 57.2958, uni.needle_count,
                alt.needle_count);
  }
  std::printf("(reform converges both styles to nearly the same mesh; the\n"
              " choice matters only when reform is disabled)\n");

  std::printf(
      "\n==== A2b: smoothing extension on top of reform (not in the 1970 "
      "program) ====\n");
  std::printf("%-8s %20s %20s\n", "figure", "mean angle ref/+smooth",
              "worst angle ref/+smooth");
  for (const char* id : {"fig09", "fig10", "fig07"}) {
    idlz::IdlzCase c;
    for (const auto& nc : scenarios::all_idealizations()) {
      if (nc.id == id) c = nc.c;
    }
    const idlz::IdlzResult r = idlz::run(c);
    const auto reformed = mesh::summarize_quality(r.mesh);
    mesh::TriMesh m = r.mesh;
    idlz::smooth_interior(m);
    const auto smoothed = mesh::summarize_quality(m);
    std::printf("%-8s %9.1f / %-9.1f %9.1f / %-9.1f\n", id,
                reformed.mean_min_angle_rad * 57.2958,
                smoothed.mean_min_angle_rad * 57.2958,
                reformed.min_angle_rad * 57.2958,
                smoothed.min_angle_rad * 57.2958);
  }

  std::printf("\n==== A3: automatic vs fixed contour interval ====\n");
  const scenarios::AnalysisOutput out = scenarios::fig13_analysis();
  std::printf("%-24s %10s %10s %10s\n", "interval", "levels", "segments",
              "labels");
  for (double delta : {0.0, 100.0, 250.0, 1000.0, 2500.0}) {
    ospl::OsplCase c;
    c.mesh = out.idlz.mesh;
    c.values = out.fields[0].values;
    c.delta = delta;
    const ospl::OsplResult r = ospl::run(c);
    char name[32];
    if (delta == 0.0) {
      std::snprintf(name, sizeof name, "automatic (%g)", r.delta);
    } else {
      std::snprintf(name, sizeof name, "%g", delta);
    }
    std::printf("%-24s %10zu %10zu %10zu\n", name, r.levels.size(),
                r.segments.size(), r.labels.accepted.size());
  }
  std::printf("(the automatic rule keeps the plot readable: <=20 levels "
              "regardless of range)\n\n");
}

void BM_FactorSolve(benchmark::State& state) {
  // state.range(0): 0 = assembly numbering, 1 = CM, 2 = RCM.
  const idlz::NumberingScheme schemes[] = {
      idlz::NumberingScheme::kBest, idlz::NumberingScheme::kCuthillMcKee,
      idlz::NumberingScheme::kReverseCuthillMcKee};
  const bool renumber = state.range(0) != 0;
  const idlz::IdlzResult r =
      cylinder_with(renumber, schemes[state.range(0)]);
  const fem::StaticProblem prob = cylinder_problem(r.mesh);
  for (auto _ : state) {
    fem::BandedMatrix k(prob.num_dofs(), prob.dof_half_bandwidth());
    std::vector<double> rhs;
    prob.assemble(k, rhs);
    k.factorize();
    k.solve(rhs);
    benchmark::DoNotOptimize(rhs[0]);
  }
  static const char* labels[] = {"assembly order", "Cuthill-McKee",
                                 "Reverse Cuthill-McKee"};
  state.SetLabel(std::string(labels[state.range(0)]) + ", dof bandwidth " +
                 std::to_string(prob.dof_half_bandwidth()));
}
BENCHMARK(BM_FactorSolve)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

void BM_ReformPass(benchmark::State& state) {
  idlz::IdlzCase c = scenarios::fig09_dsrv_hatch();
  c.options.reform_elements = state.range(0) != 0;
  for (auto _ : state) {
    idlz::IdlzResult r = idlz::run(c);
    benchmark::DoNotOptimize(r.reform.flips);
  }
  state.SetLabel(state.range(0) ? "reform on" : "reform off");
}
BENCHMARK(BM_ReformPass)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
