# Empty dependencies file for feio_cli.
# This may be replaced when dependencies are built.
