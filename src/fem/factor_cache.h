// Bounded LRU of factorized stiffness systems for the serve path.
//
// A repeat job re-assembles and re-factorizes an identical stiffness matrix
// — the O(n * hbw^2) step that dominates every static solve. The cache keys
// the *operator* of a StaticProblem by three 64-bit content hashes (mesh
// geometry/topology, material field, constraints + thermal field) plus a
// configuration tag (storage kind and ordering choice — see factor_config,
// so a banded factor can never alias a skyline factor of the same
// operator, nor one ordering's factor another's); the load vector (point
// loads + edge pressures) is hashed separately via loads_key() and is NOT
// part of the key. One cached factorization therefore serves any number of
// load cases: a hit re-assembles only the unconstrained rhs, replays the
// recorded Dirichlet rhs transformation (whose coefficients are
// load-independent pre-elimination K entries), and runs the const solve()
// against the cached factor bytes — bit-identical to a cold solve at any
// thread count.
//
// Entries are immutable shared_ptr<const FactorEntry>; concurrent workers
// can solve against the same cached factor (solve() only reads the
// factor). Insertion happens ONLY after a fully successful cold solve — a
// job that faults, times out, or hits a singular pivot throws past the
// put(), so a failed job can never poison the cache (docs/ROBUSTNESS.md).
//
// Idle-entry TTL: a non-zero ttl_ms evicts entries that have not been hit
// within the window. Expired entries are swept from the cold end of the
// recency list on every get/put (cache.factor.ttl_evictions counts them),
// so a burst of one-off operators cannot pin stale factor bytes for the
// life of the session. The clock is injectable for deterministic tests;
// the default reads the steady clock.
//
// Thread-safe: all state sits behind an annotated util::Mutex. Capacity 0
// disables storage (every get misses; put is a no-op).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <variant>
#include <vector>

#include "fem/banded.h"
#include "fem/skyline.h"
#include "feio/run_options.h"
#include "util/lru.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace feio::fem {

class StaticProblem;

// Operator identity: everything that determines the factorized matrix.
// Loads are deliberately absent — see loads_key(). `config` carries the
// storage kind and ordering choice (factor_config) so differently-shaped
// factors of the same operator occupy distinct slots.
struct FactorKey {
  std::uint64_t mesh_hash = 0;
  std::uint64_t material_hash = 0;
  std::uint64_t operator_hash = 0;  // constraints + thermal field
  std::uint64_t config = 0;         // storage kind + ordering choice
};

inline bool operator<(const FactorKey& a, const FactorKey& b) {
  if (a.mesh_hash != b.mesh_hash) return a.mesh_hash < b.mesh_hash;
  if (a.material_hash != b.material_hash) {
    return a.material_hash < b.material_hash;
  }
  if (a.operator_hash != b.operator_hash) {
    return a.operator_hash < b.operator_hash;
  }
  return a.config < b.config;
}

inline bool operator==(const FactorKey& a, const FactorKey& b) {
  return a.mesh_hash == b.mesh_hash && a.material_hash == b.material_hash &&
         a.operator_hash == b.operator_hash && a.config == b.config;
}

// The reusable result of assemble + factorize: the factorized matrix (in
// whichever storage the solve selected), the recorded Dirichlet rhs op
// sequence (so a new load vector can be constrained identically), and the
// hash of the loads the entry was filled with (only used to count
// load_reuses — hits that solve a different load case than the one that
// populated the entry).
struct FactorEntry {
  std::variant<BandedMatrix, SkylineMatrix> matrix;
  std::vector<DirichletRhsOp> rhs_ops;
  std::uint64_t loads_hash = 0;

  // Solves against whichever storage the entry holds (both are const,
  // deterministic, and bit-identical to their cold paths).
  void solve(std::vector<double>& rhs) const {
    std::visit([&rhs](const auto& m) { m.solve(rhs); }, matrix);
  }
  bool is_skyline() const {
    return std::holds_alternative<SkylineMatrix>(matrix);
  }
};

struct FactorCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t load_reuses = 0;     // hits whose load vector differed
  std::int64_t ttl_evictions = 0;   // idle entries expired by the TTL
  std::int64_t entries = 0;
};

class FactorCache {
 public:
  // Monotonic milliseconds for the TTL sweep; injectable for tests.
  using Clock = std::function<std::int64_t()>;

  // ttl_ms == 0 disables idle eviction (entries live until LRU pressure).
  // A null clock uses the process steady clock.
  explicit FactorCache(std::size_t capacity, std::int64_t ttl_ms = 0,
                       Clock clock = nullptr);

  // Looks the operator key up (promoting it) and counts the hit or miss —
  // both in the local stats and as cache.factor.hits/misses metrics. A hit
  // whose stored loads_hash differs from `loads_hash` additionally counts
  // as a load reuse (cache.factor.load_reuse): the factorization is being
  // re-solved against a new load case. Expired idle entries are swept
  // first, so a hit is always on a live entry.
  std::shared_ptr<const FactorEntry> get(const FactorKey& key,
                                         std::uint64_t loads_hash)
      FEIO_EXCLUDES(mu_);

  // Inserts after a successful cold solve; evicts least-recently-used.
  void put(const FactorKey& key, std::shared_ptr<const FactorEntry> entry)
      FEIO_EXCLUDES(mu_);

  FactorCacheStats stats() const FEIO_EXCLUDES(mu_);

 private:
  struct Slot {
    std::shared_ptr<const FactorEntry> entry;
    std::int64_t touched_ms = 0;  // last get() hit (or the insert)
  };

  std::int64_t now_ms() const;
  void sweep_expired_locked(std::int64_t now) FEIO_REQUIRES(mu_);

  const std::int64_t ttl_ms_;
  const Clock clock_;
  mutable util::Mutex mu_;
  util::LruCache<FactorKey, Slot> cache_ FEIO_GUARDED_BY(mu_);
  std::int64_t hits_ FEIO_GUARDED_BY(mu_) = 0;
  std::int64_t misses_ FEIO_GUARDED_BY(mu_) = 0;
  std::int64_t load_reuses_ FEIO_GUARDED_BY(mu_) = 0;
  std::int64_t ttl_evictions_ FEIO_GUARDED_BY(mu_) = 0;
};

// Content hash of the problem's operator: mesh coordinates/topology/
// boundary flags, per-element material and analysis/thickness, constraints,
// and the thermal field (temperatures contribute equivalent loads, but
// alpha/t_ref also feed stress recovery, so they stay conservative in the
// operator key). FNV-1a over exact bit patterns — any bitwise change to any
// input yields a different key, so a hit can only replay a byte-identical
// operator. The returned key's `config` is 0 (banded, deck-default
// ordering); callers selecting storage/ordering stamp it via
// factor_config().
FactorKey factor_key(const StaticProblem& problem);

// The key's configuration tag for a storage kind + ordering choice pair.
// Kept trivially decodable rather than hashed: the enum values are small
// and the tag only needs to separate slots, not hide structure.
std::uint64_t factor_config(SolverStorage storage, OrderingChoice ordering);

// Content hash of the load vector definition (point loads + edge
// pressures) — the half of the old monolithic key that no longer gates
// factor reuse.
std::uint64_t loads_key(const StaticProblem& problem);

}  // namespace feio::fem
