# Empty compiler generated dependencies file for idlz_extensions_test.
# This may be replaced when dependencies are built.
