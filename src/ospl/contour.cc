#include "ospl/contour.h"

#include <algorithm>
#include <array>
#include <cstdint>

#include "util/cancel.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/parallel.h"

namespace feio::ospl {

void element_contour(const mesh::TriMesh& mesh,
                     const std::vector<double>& values, int element,
                     double level, std::vector<ContourSegment>& out) {
  const mesh::Element& el = mesh.element(element);
  std::array<geom::Vec2, 2> pts;
  std::array<mesh::Edge, 2> edges;
  int found = 0;
  for (int k = 0; k < 3 && found < 2; ++k) {
    const int i = el.n[static_cast<size_t>(k)];
    const int j = el.n[static_cast<size_t>((k + 1) % 3)];
    const double si = values[static_cast<size_t>(i)];
    const double sj = values[static_cast<size_t>(j)];
    // Half-open rule: a corner exactly at the level belongs to the "above"
    // side, so every triangle is crossed by 0 or 2 edges.
    const bool i_above = si >= level;
    const bool j_above = sj >= level;
    if (i_above == j_above) continue;
    const double t = (level - si) / (sj - si);
    // A crossing exactly at a corner (t = 0 or 1) must land exactly on the
    // node position: lerp's a + (b-a)*t form can be off by an ulp, which
    // would defeat the coincident-endpoint check below.
    pts[static_cast<size_t>(found)] =
        t <= 0.0   ? mesh.pos(i)
        : t >= 1.0 ? mesh.pos(j)
                   : geom::lerp(mesh.pos(i), mesh.pos(j), t);
    edges[static_cast<size_t>(found)] = mesh::Edge(i, j);
    ++found;
  }
  if (found == 2 && pts[0] != pts[1]) {
    // Coincident endpoints happen when the level equals the element's
    // maximum at exactly one corner: both crossings collapse onto that
    // vertex. A zero-length isogram draws nothing and would still attract
    // a label, so it is dropped.
    out.push_back(ContourSegment{pts[0], pts[1], level, element, edges[0],
                                 edges[1]});
  }
}

namespace {

// The serial per-element sweep over [begin, end): both the serial path and
// every parallel chunk run exactly this, so the concatenation of chunk
// buffers in chunk order is the serial output verbatim.
void extract_range(const mesh::TriMesh& mesh,
                   const std::vector<double>& values,
                   const std::vector<double>& levels, int begin, int end,
                   std::vector<ContourSegment>& out) {
  for (int e = begin; e < end; ++e) {
    // Coarse cancel granularity: one thread-local load per 512 elements.
    if (((e - begin) & 511) == 0) FEIO_CHECK_CANCEL("ospl.contour.element");
    FEIO_FAULT("ospl.contour");
    // "The number and size of the contours passing through the element are
    // determined" — skip levels outside the element's value range.
    const mesh::Element& el = mesh.element(e);
    const double lo =
        std::min({values[static_cast<size_t>(el.n[0])],
                  values[static_cast<size_t>(el.n[1])],
                  values[static_cast<size_t>(el.n[2])]});
    const double hi =
        std::max({values[static_cast<size_t>(el.n[0])],
                  values[static_cast<size_t>(el.n[1])],
                  values[static_cast<size_t>(el.n[2])]});
    for (double level : levels) {
      if (level < lo || level > hi) continue;
      element_contour(mesh, values, e, level, out);
    }
  }
}

}  // namespace

std::vector<ContourSegment> extract_contours(
    const mesh::TriMesh& mesh, const std::vector<double>& values,
    const std::vector<double>& levels, int threads) {
  FEIO_REQUIRE(static_cast<int>(values.size()) == mesh.num_nodes(),
               "one value per node required");
  const int ne = mesh.num_elements();
  const int chunks = util::chunk_count(ne, threads);
  std::vector<ContourSegment> out;
  if (chunks <= 1) {
    extract_range(mesh, values, levels, 0, ne, out);
    return out;
  }
  std::vector<std::vector<ContourSegment>> parts(
      static_cast<size_t>(chunks));
  util::parallel_chunks(
      ne, chunks, [&](int c, std::int64_t begin, std::int64_t end) {
        extract_range(mesh, values, levels, static_cast<int>(begin),
                      static_cast<int>(end), parts[static_cast<size_t>(c)]);
      });
  size_t total = 0;
  for (const auto& part : parts) total += part.size();
  out.reserve(total);
  for (const auto& part : parts) {
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

bool clip_segment(const geom::BBox& window, ContourSegment& seg) {
  double t0 = 0.0;
  double t1 = 1.0;
  const geom::Vec2 d = seg.b - seg.a;
  const std::array<double, 4> p{-d.x, d.x, -d.y, d.y};
  const std::array<double, 4> q{seg.a.x - window.lo.x, window.hi.x - seg.a.x,
                                seg.a.y - window.lo.y, window.hi.y - seg.a.y};
  for (int i = 0; i < 4; ++i) {
    if (p[static_cast<size_t>(i)] == 0.0) {
      if (q[static_cast<size_t>(i)] < 0.0) return false;  // parallel outside
      continue;
    }
    const double r = q[static_cast<size_t>(i)] / p[static_cast<size_t>(i)];
    if (p[static_cast<size_t>(i)] < 0.0) {
      t0 = std::max(t0, r);
    } else {
      t1 = std::min(t1, r);
    }
    if (t0 > t1) return false;
  }
  const geom::Vec2 a = seg.a;
  if (t1 < 1.0) {
    seg.b = a + d * t1;
    seg.edge_b = mesh::Edge();  // end point no longer on a mesh edge
  }
  if (t0 > 0.0) {
    seg.a = a + d * t0;
    seg.edge_a = mesh::Edge();
  }
  return true;
}

}  // namespace feio::ospl
